use crate::{AllocationMap, DeclusteringMethod, MethodError, Result};
use decluster_grid::{BucketRegion, GridSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the local-search allocation optimizer.
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchConfig {
    /// Candidate moves to evaluate.
    pub iterations: u64,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            iterations: 50_000,
            seed: 0x00DE_C105,
        }
    }
}

/// Result of a local-search optimization run.
#[derive(Debug)]
pub struct OptimizedAllocation {
    /// The optimized allocation.
    pub allocation: AllocationMap,
    /// Total response time of the starting allocation on the sample.
    pub initial_cost: u64,
    /// Total response time after optimization (never worse).
    pub final_cost: u64,
    /// Moves that were accepted.
    pub accepted_moves: u64,
}

/// Workload-adaptive declustering by greedy local search: starting from
/// `start`, repeatedly reassign a random bucket to a random other disk
/// and keep the move iff the workload's total response time does not
/// increase (sideways moves allowed, so plateaus can be crossed).
///
/// This is the "use query information" conclusion taken one step past the
/// paper's fixed methods: instead of *choosing among* DM/FX/ECC/HCAM, the
/// search edits the allocation itself. The theorem guarantees no
/// allocation is optimal for *every* query once `M > 5` — but a workload
/// is not every query, and the search exploits exactly that gap.
///
/// The cost is maintained incrementally: each region's per-disk histogram
/// is updated only for regions containing the moved bucket, making a move
/// O(regions-touching-bucket × M) instead of O(sample × area).
///
/// # Errors
/// [`MethodError::EmptyWorkload`] for an empty sample;
/// [`MethodError::UnsupportedGrid`] if `start` does not cover `space`.
pub fn optimize_allocation(
    space: &GridSpace,
    start: &AllocationMap,
    sample: &[BucketRegion],
    config: LocalSearchConfig,
) -> Result<OptimizedAllocation> {
    if sample.is_empty() {
        return Err(MethodError::EmptyWorkload);
    }
    if start.space() != space {
        return Err(MethodError::UnsupportedGrid {
            method: "optimize_allocation",
            reason: "starting allocation covers a different grid".into(),
        });
    }
    let m = start.num_disks() as usize;
    let total_buckets =
        usize::try_from(space.num_buckets()).map_err(|_| MethodError::UnsupportedGrid {
            method: "optimize_allocation",
            reason: "grid too large".into(),
        })?;

    // Inverse index: bucket id -> regions containing it.
    let mut regions_of_bucket: Vec<Vec<u32>> = vec![Vec::new(); total_buckets];
    for (ri, region) in sample.iter().enumerate() {
        for bucket in region.iter() {
            let id = space.linearize_unchecked(bucket.as_slice()) as usize;
            regions_of_bucket[id].push(ri as u32);
        }
    }

    // Per-region per-disk histograms + response times under `start`.
    let mut table: Vec<u32> = start.table().to_vec();
    let mut histograms: Vec<Vec<u64>> = sample
        .iter()
        .map(|region| {
            let mut h = vec![0u64; m];
            for bucket in region.iter() {
                let id = space.linearize_unchecked(bucket.as_slice()) as usize;
                h[table[id] as usize] += 1;
            }
            h
        })
        .collect();
    let mut rts: Vec<u64> = histograms
        .iter()
        .map(|h| h.iter().copied().max().unwrap_or(0))
        .collect();
    let initial_cost: u64 = rts.iter().sum();
    let mut cost = initial_cost;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut accepted = 0u64;
    for _ in 0..config.iterations {
        let bucket = rng.gen_range(0..total_buckets);
        if regions_of_bucket[bucket].is_empty() {
            continue; // moving an untouched bucket cannot change the cost
        }
        let old_disk = table[bucket] as usize;
        let new_disk = rng.gen_range(0..m);
        if new_disk == old_disk {
            continue;
        }
        // Apply tentatively, tracking the cost delta.
        let mut delta: i64 = 0;
        for &ri in &regions_of_bucket[bucket] {
            let h = &mut histograms[ri as usize];
            h[old_disk] -= 1;
            h[new_disk] += 1;
            let new_rt = h.iter().copied().max().unwrap_or(0);
            delta += new_rt as i64 - rts[ri as usize] as i64;
        }
        if delta <= 0 {
            // Accept: commit histograms and response times.
            for &ri in &regions_of_bucket[bucket] {
                let h = &histograms[ri as usize];
                rts[ri as usize] = h.iter().copied().max().unwrap_or(0);
            }
            table[bucket] = new_disk as u32;
            cost = (cost as i64 + delta) as u64;
            accepted += 1;
        } else {
            // Reject: roll the histograms back.
            for &ri in &regions_of_bucket[bucket] {
                let h = &mut histograms[ri as usize];
                h[old_disk] += 1;
                h[new_disk] -= 1;
            }
        }
    }

    let allocation = AllocationMap::from_table(space, m as u32, table)?;
    Ok(OptimizedAllocation {
        allocation,
        initial_cost,
        final_cost: cost,
        accepted_moves: accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModulo, Hcam};
    use decluster_grid::RangeQuery;

    fn tiled_squares(space: &GridSpace, side: u32) -> Vec<BucketRegion> {
        let mut out = Vec::new();
        let mut r = 0;
        while r + side <= space.dim(0) {
            let mut c = 0;
            while c + side <= space.dim(1) {
                out.push(
                    RangeQuery::new([r, c], [r + side - 1, c + side - 1])
                        .expect("query")
                        .region(space)
                        .expect("fits"),
                );
                c += side;
            }
            r += side;
        }
        out
    }

    fn total_cost(map: &AllocationMap, sample: &[BucketRegion]) -> u64 {
        sample.iter().map(|r| map.response_time(r)).sum()
    }

    #[test]
    fn search_never_worsens_and_reports_consistent_costs() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let start =
            AllocationMap::from_method(&space, &DiskModulo::new(&space, 8).unwrap()).unwrap();
        let sample = tiled_squares(&space, 2);
        let result = optimize_allocation(
            &space,
            &start,
            &sample,
            LocalSearchConfig {
                iterations: 20_000,
                seed: 1,
            },
        )
        .unwrap();
        assert!(result.final_cost <= result.initial_cost);
        assert_eq!(result.initial_cost, total_cost(&start, &sample));
        assert_eq!(result.final_cost, total_cost(&result.allocation, &sample));
    }

    #[test]
    fn search_fixes_dm_on_small_squares() {
        // DM is 2x optimal on every 2x2 square; the search should push it
        // to (or near) the optimum of 1 per query.
        let space = GridSpace::new_2d(16, 16).unwrap();
        let start =
            AllocationMap::from_method(&space, &DiskModulo::new(&space, 8).unwrap()).unwrap();
        let sample = tiled_squares(&space, 2);
        let optimum = sample.len() as u64; // RT 1 per query
        assert_eq!(total_cost(&start, &sample), 2 * optimum);
        let result = optimize_allocation(
            &space,
            &start,
            &sample,
            LocalSearchConfig {
                iterations: 60_000,
                seed: 7,
            },
        )
        .unwrap();
        assert_eq!(
            result.final_cost, optimum,
            "search should reach the optimum"
        );
        assert!(result.accepted_moves > 0);
    }

    #[test]
    fn search_leaves_an_already_optimal_allocation_optimal() {
        // HCAM tiled 2x2 on 8 disks is close to optimal; whatever the
        // search does, the cost cannot rise.
        let space = GridSpace::new_2d(8, 8).unwrap();
        let start = AllocationMap::from_method(&space, &Hcam::new(&space, 4).unwrap()).unwrap();
        let sample = tiled_squares(&space, 2);
        let before = total_cost(&start, &sample);
        let result =
            optimize_allocation(&space, &start, &sample, LocalSearchConfig::default()).unwrap();
        assert!(result.final_cost <= before);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let start =
            AllocationMap::from_method(&space, &DiskModulo::new(&space, 4).unwrap()).unwrap();
        let sample = tiled_squares(&space, 2);
        let cfg = LocalSearchConfig {
            iterations: 5_000,
            seed: 42,
        };
        let a = optimize_allocation(&space, &start, &sample, cfg).unwrap();
        let b = optimize_allocation(&space, &start, &sample, cfg).unwrap();
        assert_eq!(a.allocation, b.allocation);
        assert_eq!(a.final_cost, b.final_cost);
    }

    #[test]
    fn search_validates_inputs() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let start =
            AllocationMap::from_method(&space, &DiskModulo::new(&space, 4).unwrap()).unwrap();
        assert!(matches!(
            optimize_allocation(&space, &start, &[], LocalSearchConfig::default()).unwrap_err(),
            MethodError::EmptyWorkload
        ));
        let other = GridSpace::new_2d(4, 4).unwrap();
        let sample = tiled_squares(&other, 2);
        let bad_start =
            AllocationMap::from_method(&other, &DiskModulo::new(&other, 4).unwrap()).unwrap();
        assert!(
            optimize_allocation(&space, &bad_start, &sample, LocalSearchConfig::default()).is_err()
        );
    }
}
