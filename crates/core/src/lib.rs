//! Grid-based multi-attribute declustering methods.
//!
//! The subject of the ICDE'94 study: algorithms that map each bucket of a
//! [`decluster_grid::GridSpace`] to one of `M` disks so that range,
//! partial-match, and point queries spread their I/O across disks.
//!
//! Implemented methods (one module each):
//!
//! | Method | Origin | Rule |
//! |---|---|---|
//! | [`DiskModulo`] (DM/CMD) | Du & Sobolewski '82; Li et al. '92 | `(Σ iⱼ) mod M` |
//! | [`GeneralizedDiskModulo`] (GDM) | Du '86 | `(Σ cⱼ·iⱼ) mod M` |
//! | BDM | Du '86 | GDM with radix coefficients |
//! | [`FieldwiseXor`] (FX/ExFX) | Kim & Pramanik '88 | `(i₁ ⊕ … ⊕ i_k) mod M` |
//! | [`EccDecluster`] (ECC) | Faloutsos & Metaxas '91 | coset syndrome |
//! | [`Hcam`] (HCAM) | Faloutsos & Bhagwat '93 | Hilbert rank `mod M` |
//! | [`RoundRobin`], [`RandomAlloc`] | baselines | row-major / hashed |
//!
//! All methods implement [`DeclusteringMethod`]; [`AllocationMap`]
//! materializes any method over a grid and computes response times and
//! load statistics; [`MethodRegistry`] constructs methods by name;
//! [`advise`] picks the best method for a sampled workload — the paper's
//! closing recommendation ("information about common queries … ought to be
//! used in deciding the declustering") turned into an API.
//!
//! # Example
//!
//! ```
//! use decluster_grid::{GridSpace, RangeQuery};
//! use decluster_methods::{AllocationMap, DeclusteringMethod, DiskModulo, Hcam};
//!
//! let space = GridSpace::new_2d(8, 8).unwrap();
//! let dm = DiskModulo::new(&space, 4).unwrap();
//! assert_eq!(dm.disk_of(&[2, 3]).0, (2 + 3) % 4);
//!
//! // Materialize and ask for a query's response time (max buckets on one disk).
//! let map = AllocationMap::from_method(&space, &dm).unwrap();
//! let region = RangeQuery::new([0, 0], [3, 3]).unwrap().region(&space).unwrap();
//! assert_eq!(map.response_time(&region), 4); // 16 buckets over 4 disks, perfectly spread
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod advisor;
mod allocation;
mod baseline;
mod dm;
mod ecc_method;
mod error;
mod fx;
mod gdm;
mod hash;
mod hcam;
mod optimize;
mod persist;
mod plan;
mod prefix;
mod registry;
mod replication;
mod sfc;
mod traits;
mod tuning;

pub use advisor::{advise, Advice};
pub use allocation::{one_shot_response_time, AllocationMap, LoadStats};
pub use baseline::{RandomAlloc, RoundRobin};
pub use dm::DiskModulo;
pub use ecc_method::EccDecluster;
pub use error::MethodError;
pub use fx::FieldwiseXor;
pub use gdm::GeneralizedDiskModulo;
pub use hash::{splitmix64, splitmix64_unit};
pub use hcam::Hcam;
pub use optimize::{optimize_allocation, LocalSearchConfig, OptimizedAllocation};
pub use persist::KernelCache;
pub use plan::{PlanCounts, ShareAttribution, SharedScan};
pub use prefix::{kernel_build_count, CornerPlan, DiskCounts, PlanCache, Scratch};
pub use registry::{MethodKind, MethodRegistry};
pub use replication::ChainedDecluster;
pub use sfc::{CurveAlloc, CurveKind};
pub use traits::DeclusteringMethod;
pub use tuning::{tune_gdm_coefficients, TunedGdm};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MethodError>;
