//! Binary persistence for materialized allocations.
//!
//! A parallel database computes an allocation once (possibly via the
//! advisor or the GDM tuner) and must reload it identically at every
//! restart — the whole premise of static declustering is that the
//! bucket→disk map never changes behind the system's back. This module
//! gives [`AllocationMap`] a versioned, self-describing binary format:
//!
//! ```text
//! "DCLA" | version u16 | k u16 | dims[k] u32 | M u32 |
//! name_len u8 | name bytes | disk table (u8 per bucket if M ≤ 256, else u32) |
//! crc32 u32        (version ≥ 2: IEEE CRC-32 of every preceding byte)
//! ```
//!
//! All integers little-endian. Round-trips exactly; unknown method names
//! load as `"TABLE"` (the map itself is what matters). Version 1 images
//! (no checksum trailer) still load; version 2 images are rejected with
//! [`MethodError::CorruptImage`] when any byte has been disturbed.

use crate::{AllocationMap, DeclusteringMethod, MethodError, MethodKind, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use decluster_grid::GridSpace;

const MAGIC: &[u8; 4] = b"DCLA";
/// First format version: no integrity trailer.
const V1: u16 = 1;
/// Current format version: CRC-32 trailer over the whole image.
const VERSION: u16 = 2;

/// IEEE CRC-32 (the polynomial used by zip/zlib/Ethernet), table-driven.
/// Implemented here so persistence stays dependency-free.
fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut j = 0;
            while j < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                j += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

impl AllocationMap {
    /// Serializes the allocation to its binary format (current version,
    /// with CRC-32 trailer).
    pub fn to_bytes(&self) -> Bytes {
        let space = self.space();
        let table = self.table();
        let m = self.num_disks();
        let name = crate::DeclusteringMethod::name(self);
        let mut buf = BytesMut::with_capacity(
            4 + 2 + 2 + 4 * space.k() + 4 + 1 + name.len() + table.len() * 4 + 4,
        );
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(space.k() as u16);
        for &d in space.dims() {
            buf.put_u32_le(d);
        }
        buf.put_u32_le(m);
        let name_bytes = &name.as_bytes()[..name.len().min(255)];
        buf.put_u8(name_bytes.len() as u8);
        buf.put_slice(name_bytes);
        if m <= 256 {
            for &d in table {
                buf.put_u8(d as u8);
            }
        } else {
            for &d in table {
                buf.put_u32_le(d);
            }
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserializes an allocation written by [`AllocationMap::to_bytes`].
    /// Loads both the current checksummed format and legacy version-1
    /// images (written before the trailer existed).
    ///
    /// # Errors
    /// [`MethodError::CorruptImage`] with a descriptive reason for any
    /// malformed input: bad magic, truncation, oversized input, shape
    /// mismatch, out-of-range disks, or a failing checksum. Never panics
    /// on arbitrary bytes.
    pub fn from_bytes(data: &[u8]) -> Result<AllocationMap> {
        let corrupt = |reason: &str| MethodError::CorruptImage {
            reason: reason.to_owned(),
        };
        if data.len() < 8 {
            return Err(corrupt("truncated header"));
        }
        if &data[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        let body: &[u8] = match version {
            V1 => &data[6..],
            VERSION => {
                if data.len() < 6 + 4 {
                    return Err(corrupt("truncated checksum trailer"));
                }
                let (payload, trailer) = data.split_at(data.len() - 4);
                let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
                if crc32(payload) != stored {
                    return Err(corrupt("checksum mismatch"));
                }
                &payload[6..]
            }
            _ => return Err(corrupt("unsupported version")),
        };
        let mut buf = body;
        if buf.remaining() < 2 {
            return Err(corrupt("truncated dimensions"));
        }
        let k = buf.get_u16_le() as usize;
        if k == 0 || buf.remaining() < 4 * k + 4 + 1 {
            return Err(corrupt("truncated dimensions"));
        }
        let dims: Vec<u32> = (0..k).map(|_| buf.get_u32_le()).collect();
        let m = buf.get_u32_le();
        let name_len = buf.get_u8() as usize;
        if buf.remaining() < name_len {
            return Err(corrupt("truncated name"));
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| corrupt("name not UTF-8"))?;
        let space = GridSpace::new(dims).map_err(MethodError::from)?;
        let total = usize::try_from(space.num_buckets()).map_err(|_| corrupt("grid too large"))?;
        let cell = if m <= 256 { 1 } else { 4 };
        let expected = total
            .checked_mul(cell)
            .ok_or_else(|| corrupt("grid too large"))?;
        if buf.remaining() != expected {
            return Err(corrupt(if buf.remaining() > expected {
                "oversized table"
            } else {
                "truncated table"
            }));
        }
        let table: Vec<u32> = (0..total)
            .map(|_| {
                if m <= 256 {
                    u32::from(buf.get_u8())
                } else {
                    buf.get_u32_le()
                }
            })
            .collect();
        let map = AllocationMap::from_table(&space, m, table)?;
        // Restore the stable method name when it is one we know.
        Ok(match MethodKind::parse(&name) {
            Ok(kind) => map.renamed(kind.name()),
            Err(_) => map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeclusteringMethod, DiskModulo, Hcam, MethodRegistry};

    fn sample_map() -> AllocationMap {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let hcam = Hcam::new(&space, 5).unwrap();
        AllocationMap::from_method(&space, &hcam).unwrap()
    }

    /// The same image downgraded to the legacy v1 layout: version field
    /// patched and the checksum trailer stripped.
    fn as_v1(v2: &[u8]) -> Vec<u8> {
        let mut v1 = v2[..v2.len() - 4].to_vec();
        v1[4..6].copy_from_slice(&V1.to_le_bytes());
        v1
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let map = sample_map();
        let bytes = map.to_bytes();
        let loaded = AllocationMap::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, map);
        assert_eq!(loaded.name(), "HCAM");
        assert_eq!(loaded.num_disks(), 5);
        assert_eq!(loaded.space().dims(), &[8, 8]);
    }

    #[test]
    fn roundtrip_every_registry_method() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let registry = MethodRegistry::default();
        for method in registry.with_baselines(&space, 8) {
            let map = AllocationMap::from_method(&space, method.as_ref()).unwrap();
            let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
            assert_eq!(loaded, map, "{}", method.name());
            assert_eq!(loaded.name(), map.name());
        }
    }

    #[test]
    fn wide_disk_counts_use_u32_cells() {
        let space = GridSpace::new_2d(32, 32).unwrap();
        let dm = DiskModulo::new(&space, 300).unwrap();
        let map = AllocationMap::from_method(&space, &dm).unwrap();
        let bytes = map.to_bytes();
        let loaded = AllocationMap::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, map);
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let space = GridSpace::new_cube(3, 8).unwrap();
        let dm = DiskModulo::new(&space, 7).unwrap();
        let map = AllocationMap::from_method(&space, &dm).unwrap();
        assert_eq!(AllocationMap::from_bytes(&map.to_bytes()).unwrap(), map);
    }

    #[test]
    fn trailer_is_crc32_of_the_payload() {
        let bytes = sample_map().to_bytes();
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        assert_eq!(
            u32::from_le_bytes(trailer.try_into().unwrap()),
            crc32(payload)
        );
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
    }

    #[test]
    fn legacy_v1_images_still_load() {
        let map = sample_map();
        let v1 = as_v1(&map.to_bytes());
        let loaded = AllocationMap::from_bytes(&v1).unwrap();
        assert_eq!(loaded, map);
        assert_eq!(loaded.name(), "HCAM");
    }

    #[test]
    fn checksum_mismatch_is_reported_as_such() {
        let map = sample_map();
        let mut bad = map.to_bytes().to_vec();
        // Flip one bit deep in the disk table: only the checksum notices.
        let mid = bad.len() - 10;
        bad[mid] ^= 0x01;
        match AllocationMap::from_bytes(&bad).unwrap_err() {
            MethodError::CorruptImage { reason } => {
                assert!(reason.contains("checksum"), "reason: {reason}")
            }
            other => panic!("expected CorruptImage, got {other:?}"),
        }
    }

    #[test]
    fn rejects_corruption() {
        let map = sample_map();
        let good = map.to_bytes();

        // Bad magic.
        let mut bad = good.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            AllocationMap::from_bytes(&bad).unwrap_err(),
            MethodError::CorruptImage { .. }
        ));

        // Unsupported version (patch + strip trailer so the checksum
        // cannot mask the version check).
        let mut bad = as_v1(&good);
        bad[4] = 0xFF;
        assert!(AllocationMap::from_bytes(&bad).is_err());

        // Truncated table.
        let bad = &good[..good.len() - 3];
        assert!(AllocationMap::from_bytes(bad).is_err());
        let bad = &as_v1(&good)[..good.len() - 7];
        assert!(AllocationMap::from_bytes(bad).is_err());

        // Oversized input: trailing garbage after a valid v1 image.
        let mut bad = as_v1(&good);
        bad.extend_from_slice(&[0, 0, 0]);
        match AllocationMap::from_bytes(&bad).unwrap_err() {
            MethodError::CorruptImage { reason } => {
                assert!(reason.contains("oversized"), "reason: {reason}")
            }
            other => panic!("expected CorruptImage, got {other:?}"),
        }

        // Empty input.
        assert!(AllocationMap::from_bytes(&[]).is_err());

        // Out-of-range disk in the table (v1, so no checksum to trip
        // first — exercises the semantic validation).
        let mut bad = as_v1(&good);
        let last = bad.len() - 1;
        bad[last] = 200; // m = 5
        assert!(AllocationMap::from_bytes(&bad).is_err());
    }

    #[test]
    fn unknown_method_names_load_as_table() {
        let space = GridSpace::new_2d(2, 2).unwrap();
        let map = AllocationMap::from_table(&space, 2, vec![0, 1, 1, 0]).unwrap();
        let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
        assert_eq!(loaded.name(), "TABLE");
        assert_eq!(loaded, map);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any well-formed table round-trips bit-exactly.
        #[test]
        fn arbitrary_tables_roundtrip(
            d0 in 1u32..8, d1 in 1u32..8, m in 1u32..300, seed in any::<u64>()
        ) {
            let space = GridSpace::new_2d(d0, d1).unwrap();
            let total = (d0 * d1) as usize;
            // Deterministic pseudo-random table from the seed.
            let table: Vec<u32> = (0..total)
                .map(|i| ((seed.wrapping_mul(i as u64 + 1) >> 7) % u64::from(m)) as u32)
                .collect();
            let map = AllocationMap::from_table(&space, m, table).unwrap();
            let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
            prop_assert_eq!(loaded, map);
        }

        /// Random byte strings never panic the parser (they error instead).
        #[test]
        fn fuzzed_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = AllocationMap::from_bytes(&data);
        }

        /// Flipping any single byte of a valid checksummed image is
        /// always rejected: CRC-32 detects every single-byte error, and
        /// the only checksum-free escape hatch (patching the version
        /// field down to 1) leaves the trailer as 4 surplus bytes that
        /// trip the length check.
        #[test]
        fn single_byte_corruption_is_rejected(flip in 0usize..200, xor in 1u8..255) {
            let space = GridSpace::new_2d(4, 4).unwrap();
            let map = AllocationMap::from_table(
                &space, 3, (0..16).map(|i| i % 3).collect()
            ).unwrap();
            let mut bytes = map.to_bytes().to_vec();
            let idx = flip % bytes.len();
            bytes[idx] ^= xor;
            prop_assert!(AllocationMap::from_bytes(&bytes).is_err());
        }

        /// Truncating a checksummed image at any point is rejected.
        #[test]
        fn any_truncation_is_rejected(cut in 0usize..200) {
            let space = GridSpace::new_2d(4, 4).unwrap();
            let map = AllocationMap::from_table(
                &space, 3, (0..16).map(|i| i % 3).collect()
            ).unwrap();
            let bytes = map.to_bytes();
            let cut = cut % bytes.len();
            prop_assert!(AllocationMap::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
