//! Binary persistence for materialized allocations.
//!
//! A parallel database computes an allocation once (possibly via the
//! advisor or the GDM tuner) and must reload it identically at every
//! restart — the whole premise of static declustering is that the
//! bucket→disk map never changes behind the system's back. This module
//! gives [`AllocationMap`] a versioned, self-describing binary format:
//!
//! ```text
//! "DCLA" | version u16 | k u16 | dims[k] u32 | M u32 |
//! name_len u8 | name bytes | disk table (u8 per bucket if M ≤ 256, else u32) |
//! crc32 u32        (version ≥ 2: IEEE CRC-32 of every preceding byte)
//! ```
//!
//! All integers little-endian. Round-trips exactly; unknown method names
//! load as `"TABLE"` (the map itself is what matters). Version 1 images
//! (no checksum trailer) still load; version 2 images are rejected with
//! [`MethodError::CorruptImage`] when any byte has been disturbed.
//!
//! # Persist v3: compiled-kernel images
//!
//! Version 3 extends persistence past the allocation to the *compiled*
//! [`DiskCounts`] kernel, so a restarted server skips the build phase
//! entirely (see [`KernelCache`]). A kernel-cache file is its own
//! container with a distinct magic:
//!
//! ```text
//! "DCLK" | version u16 = 3 | entry_count u32 |
//! per entry:
//!   name_len u8 | name bytes | identity u32 |
//!   k u16 | dims[k] u32 | strides[k] u64 | M u32 |
//!   lane u8 (16 | 32) | table cells (prod(dims) · M lanes, LE) |
//! crc32 u32       (IEEE CRC-32 of every preceding byte)
//! ```
//!
//! `identity` is a CRC-32 fingerprint of the source allocation (dims,
//! disk count, disk table), checked at [`KernelCache::lookup`] time
//! against the *live* allocation: a stale image — same method name,
//! different grid or table — misses and the caller recompiles, it never
//! misreads. The strides are stored and revalidated against
//! recomputation from the dims, and the lane tag keeps the image
//! width-aware, so a loaded kernel is bit-identical to a rebuilt one.
//! AllocationMap images remain at version 2 and load unchanged.

use crate::prefix::CountLane;
use crate::{AllocationMap, DeclusteringMethod, DiskCounts, MethodError, MethodKind, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use decluster_grid::GridSpace;

const MAGIC: &[u8; 4] = b"DCLA";
/// First format version: no integrity trailer.
const V1: u16 = 1;
/// Current format version: CRC-32 trailer over the whole image.
const VERSION: u16 = 2;
/// Magic of a kernel-cache container (persist v3).
const KERNEL_MAGIC: &[u8; 4] = b"DCLK";
/// Kernel-image format version.
const KERNEL_VERSION: u16 = 3;

/// IEEE CRC-32 (the polynomial used by zip/zlib/Ethernet), slicing-by-16
/// table-driven: sixteen bytes are folded per step, so checksumming a
/// multi-hundred-KiB kernel image costs a fraction of the byte-at-a-time
/// loop it replaces (the value is unchanged — pinned by the known-vector
/// test and every persisted-image test). Implemented here so
/// persistence stays dependency-free.
fn crc32(data: &[u8]) -> u32 {
    static TABLES: [[u32; 256]; 16] = {
        let mut tables = [[0u32; 256]; 16];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut j = 0;
            while j < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                j += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 16 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
                i += 1;
            }
            t += 1;
        }
        tables
    };
    #[inline(always)]
    fn fold4(word: u32, tables: &[[u32; 256]; 16], base: usize) -> u32 {
        tables[base + 3][(word & 0xFF) as usize]
            ^ tables[base + 2][((word >> 8) & 0xFF) as usize]
            ^ tables[base + 1][((word >> 16) & 0xFF) as usize]
            ^ tables[base][(word >> 24) as usize]
    }
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        let w0 = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let w1 = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let w2 = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let w3 = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        crc = fold4(w0, &TABLES, 12)
            ^ fold4(w1, &TABLES, 8)
            ^ fold4(w2, &TABLES, 4)
            ^ fold4(w3, &TABLES, 0);
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

impl AllocationMap {
    /// Serializes the allocation to its binary format (current version,
    /// with CRC-32 trailer).
    pub fn to_bytes(&self) -> Bytes {
        let space = self.space();
        let table = self.table();
        let m = self.num_disks();
        let name = crate::DeclusteringMethod::name(self);
        let mut buf = BytesMut::with_capacity(
            4 + 2 + 2 + 4 * space.k() + 4 + 1 + name.len() + table.len() * 4 + 4,
        );
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(space.k() as u16);
        for &d in space.dims() {
            buf.put_u32_le(d);
        }
        buf.put_u32_le(m);
        let name_bytes = &name.as_bytes()[..name.len().min(255)];
        buf.put_u8(name_bytes.len() as u8);
        buf.put_slice(name_bytes);
        if m <= 256 {
            for &d in table {
                buf.put_u8(d as u8);
            }
        } else {
            for &d in table {
                buf.put_u32_le(d);
            }
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserializes an allocation written by [`AllocationMap::to_bytes`].
    /// Loads both the current checksummed format and legacy version-1
    /// images (written before the trailer existed).
    ///
    /// # Errors
    /// [`MethodError::CorruptImage`] with a descriptive reason for any
    /// malformed input: bad magic, truncation, oversized input, shape
    /// mismatch, out-of-range disks, or a failing checksum. Never panics
    /// on arbitrary bytes.
    pub fn from_bytes(data: &[u8]) -> Result<AllocationMap> {
        let corrupt = |reason: &str| MethodError::CorruptImage {
            reason: reason.to_owned(),
        };
        if data.len() < 8 {
            return Err(corrupt("truncated header"));
        }
        if &data[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        let body: &[u8] = match version {
            V1 => &data[6..],
            VERSION => {
                if data.len() < 6 + 4 {
                    return Err(corrupt("truncated checksum trailer"));
                }
                let (payload, trailer) = data.split_at(data.len() - 4);
                let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
                if crc32(payload) != stored {
                    return Err(corrupt("checksum mismatch"));
                }
                &payload[6..]
            }
            _ => return Err(corrupt("unsupported version")),
        };
        let mut buf = body;
        if buf.remaining() < 2 {
            return Err(corrupt("truncated dimensions"));
        }
        let k = buf.get_u16_le() as usize;
        if k == 0 || buf.remaining() < 4 * k + 4 + 1 {
            return Err(corrupt("truncated dimensions"));
        }
        let dims: Vec<u32> = (0..k).map(|_| buf.get_u32_le()).collect();
        let m = buf.get_u32_le();
        let name_len = buf.get_u8() as usize;
        if buf.remaining() < name_len {
            return Err(corrupt("truncated name"));
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| corrupt("name not UTF-8"))?;
        let space = GridSpace::new(dims).map_err(MethodError::from)?;
        let total = usize::try_from(space.num_buckets()).map_err(|_| corrupt("grid too large"))?;
        let cell = if m <= 256 { 1 } else { 4 };
        let expected = total
            .checked_mul(cell)
            .ok_or_else(|| corrupt("grid too large"))?;
        if buf.remaining() != expected {
            return Err(corrupt(if buf.remaining() > expected {
                "oversized table"
            } else {
                "truncated table"
            }));
        }
        let table: Vec<u32> = (0..total)
            .map(|_| {
                if m <= 256 {
                    u32::from(buf.get_u8())
                } else {
                    buf.get_u32_le()
                }
            })
            .collect();
        let map = AllocationMap::from_table(&space, m, table)?;
        // Restore the stable method name when it is one we know.
        Ok(match MethodKind::parse(&name) {
            Ok(kind) => map.renamed(kind.name()),
            Err(_) => map,
        })
    }
}

/// CRC-32 fingerprint of an allocation's identity — dims, disk count,
/// and the full disk table — used to revalidate a persisted kernel
/// image against the live grid before adopting it.
fn alloc_identity(map: &AllocationMap) -> u32 {
    let space = map.space();
    let table = map.table();
    let mut buf = BytesMut::with_capacity(2 + 4 * space.k() + 4 + 4 * table.len());
    buf.put_u16_le(space.k() as u16);
    for &d in space.dims() {
        buf.put_u32_le(d);
    }
    buf.put_u32_le(map.num_disks());
    // Bulk-encode the table: identity runs on every warm-start lookup,
    // so a put call per cell would dominate the revalidation cost.
    let mut raw = vec![0u8; table.len() * 4];
    for (dst, &d) in raw.chunks_exact_mut(4).zip(table) {
        dst.copy_from_slice(&d.to_le_bytes());
    }
    buf.put_slice(&raw);
    crc32(&buf)
}

/// Row strides implied by `dims` (row-major, innermost stride 1) — the
/// same derivation as the kernel build, recomputed at load time to
/// revalidate the persisted stride metadata.
fn derive_strides(dims: &[u32]) -> Vec<usize> {
    let k = dims.len();
    let mut strides = vec![1usize; k];
    for i in (0..k.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1] as usize;
    }
    strides
}

/// One persisted kernel: the method name it was compiled for, the
/// source allocation's identity fingerprint, and the compiled table.
#[derive(Clone, Debug)]
struct KernelEntry {
    name: String,
    identity: u32,
    kernel: DiskCounts,
}

/// A persistable set of compiled [`DiskCounts`] kernels, keyed by
/// method name — the warm-start artifact (persist v3).
///
/// A cold process builds its kernels, [`insert`](KernelCache::insert)s
/// them, and writes [`to_bytes`](KernelCache::to_bytes) to disk; a
/// restarted process loads the file and resolves each method through
/// [`lookup`](KernelCache::lookup), reaching its first scored query
/// with zero build-phase work. Lookups revalidate the stored identity
/// fingerprint against the live allocation, so an image that no longer
/// matches the grid (changed dims, disk count, or table) simply misses
/// and the caller recompiles — stale state can never be misread.
///
/// Serialization is canonical: entries are written sorted by name, so
/// two caches holding the same kernels produce byte-identical files
/// regardless of insertion order.
#[derive(Clone, Debug, Default)]
pub struct KernelCache {
    entries: Vec<KernelEntry>,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kernels held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no kernels.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the cache holds a kernel under `name` (regardless of
    /// whether it would revalidate against any particular allocation).
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Stores `kernel` under `name` (the caller's stable method key —
    /// engine allocations all materialize as `"TABLE"`, so the key is
    /// explicit), replacing any previous entry with that name. The
    /// allocation's identity fingerprint is captured alongside, so
    /// later lookups only match the exact same grid and table.
    pub fn insert(&mut self, name: &str, map: &AllocationMap, kernel: &DiskCounts) {
        let entry = KernelEntry {
            identity: alloc_identity(map),
            kernel: kernel.clone(),
            name: name.to_owned(),
        };
        match self.entries.iter_mut().find(|e| e.name == entry.name) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// The kernel stored under `name`, if it revalidates against
    /// `map`'s live identity (same dims, disk count, and disk table). A
    /// stale or absent image returns `None` — the caller rebuilds, it
    /// never misreads.
    pub fn lookup(&self, name: &str, map: &AllocationMap) -> Option<DiskCounts> {
        let entry = self.entries.iter().find(|e| e.name == name)?;
        if entry.kernel.dims() != map.space().dims()
            || entry.kernel.num_disks() != map.num_disks()
            || entry.identity != alloc_identity(map)
        {
            return None;
        }
        Some(entry.kernel.clone())
    }

    /// Serializes the cache to the v3 container format (canonical
    /// name-sorted entry order, CRC-32 trailer).
    pub fn to_bytes(&self) -> Bytes {
        let mut order: Vec<&KernelEntry> = self.entries.iter().collect();
        order.sort_by(|a, b| a.name.cmp(&b.name));
        let cap = 14
            + self
                .entries
                .iter()
                .map(|e| {
                    1 + e.name.len()
                        + 4
                        + 2
                        + 12 * e.kernel.dims().len()
                        + 5
                        + e.kernel.table_bytes()
                })
                .sum::<usize>();
        let mut buf = BytesMut::with_capacity(cap);
        buf.put_slice(KERNEL_MAGIC);
        buf.put_u16_le(KERNEL_VERSION);
        buf.put_u32_le(order.len() as u32);
        for entry in order {
            let name_bytes = &entry.name.as_bytes()[..entry.name.len().min(255)];
            buf.put_u8(name_bytes.len() as u8);
            buf.put_slice(name_bytes);
            buf.put_u32_le(entry.identity);
            let kernel = &entry.kernel;
            buf.put_u16_le(kernel.dims().len() as u16);
            for &d in kernel.dims() {
                buf.put_u32_le(d);
            }
            for &s in kernel.strides() {
                buf.put_u64_le(s as u64);
            }
            buf.put_u32_le(kernel.num_disks());
            // Bulk-encode the table lane: staging through a byte vector
            // and appending once is far cheaper than a put call per cell
            // for the multi-hundred-KiB tables a serving grid produces.
            match kernel.lane() {
                CountLane::U16(t) => {
                    buf.put_u8(16);
                    let mut raw = vec![0u8; t.len() * 2];
                    for (dst, &v) in raw.chunks_exact_mut(2).zip(t) {
                        dst.copy_from_slice(&v.to_le_bytes());
                    }
                    buf.put_slice(&raw);
                }
                CountLane::U32(t) => {
                    buf.put_u8(32);
                    let mut raw = vec![0u8; t.len() * 4];
                    for (dst, &v) in raw.chunks_exact_mut(4).zip(t) {
                        dst.copy_from_slice(&v.to_le_bytes());
                    }
                    buf.put_slice(&raw);
                }
            }
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserializes a cache written by [`KernelCache::to_bytes`].
    ///
    /// # Errors
    /// [`MethodError::CorruptImage`] with a descriptive reason for any
    /// malformed input: bad magic, unsupported version, truncation,
    /// trailing garbage, a failing checksum, inconsistent stride
    /// metadata, or an impossible shape. Never panics on arbitrary
    /// bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let corrupt = |reason: &str| MethodError::CorruptImage {
            reason: reason.to_owned(),
        };
        if data.len() < 4 + 2 + 4 + 4 {
            return Err(corrupt("truncated kernel-cache header"));
        }
        if &data[..4] != KERNEL_MAGIC {
            return Err(corrupt("bad kernel-cache magic"));
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if version != KERNEL_VERSION {
            return Err(corrupt("unsupported kernel-cache version"));
        }
        let (payload, trailer) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
        if crc32(payload) != stored {
            return Err(corrupt("kernel-cache checksum mismatch"));
        }
        let mut buf = &payload[6..];
        let count = buf.get_u32_le() as usize;
        let mut entries: Vec<KernelEntry> = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            if buf.remaining() < 1 {
                return Err(corrupt("truncated entry name"));
            }
            let name_len = buf.get_u8() as usize;
            if buf.remaining() < name_len + 4 + 2 {
                return Err(corrupt("truncated entry header"));
            }
            let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
                .map_err(|_| corrupt("entry name not UTF-8"))?;
            if entries.iter().any(|e| e.name == name) {
                return Err(corrupt("duplicate entry name"));
            }
            let identity = buf.get_u32_le();
            let k = buf.get_u16_le() as usize;
            if k == 0 || k > 24 {
                return Err(corrupt("impossible dimension count"));
            }
            if buf.remaining() < 4 * k + 8 * k + 4 + 1 {
                return Err(corrupt("truncated entry shape"));
            }
            let dims: Vec<u32> = (0..k).map(|_| buf.get_u32_le()).collect();
            let strides: Vec<u64> = (0..k).map(|_| buf.get_u64_le()).collect();
            let m = buf.get_u32_le();
            let lane = buf.get_u8();
            if m == 0 {
                return Err(corrupt("zero disks"));
            }
            let total = dims
                .iter()
                .try_fold(1u64, |acc, &d| {
                    if d == 0 {
                        None
                    } else {
                        acc.checked_mul(u64::from(d))
                    }
                })
                .filter(|&t| t <= u64::from(u32::MAX))
                .ok_or_else(|| corrupt("impossible grid shape"))?;
            let expect_strides = derive_strides(&dims);
            if strides
                .iter()
                .zip(&expect_strides)
                .any(|(&got, &want)| got != want as u64)
            {
                return Err(corrupt("stride metadata inconsistent with dims"));
            }
            let cells = usize::try_from(total)
                .ok()
                .and_then(|t| t.checked_mul(m as usize))
                .ok_or_else(|| corrupt("table too large"))?;
            let lane_bytes = match lane {
                16 => 2usize,
                32 => 4usize,
                _ => return Err(corrupt("unknown lane width")),
            };
            let need = cells
                .checked_mul(lane_bytes)
                .ok_or_else(|| corrupt("table too large"))?;
            if buf.remaining() < need {
                return Err(corrupt("truncated kernel table"));
            }
            // Bulk-decode the table lane straight off the input slice:
            // one bounds check for the whole table instead of a Buf call
            // per cell keeps warm-start image loads cheaper than a cold
            // kernel build.
            let (raw, rest) = buf.split_at(need);
            buf = rest;
            let table = if lane == 16 {
                CountLane::U16(
                    raw.chunks_exact(2)
                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                        .collect(),
                )
            } else {
                CountLane::U32(
                    raw.chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                )
            };
            entries.push(KernelEntry {
                name,
                identity,
                kernel: DiskCounts::from_parts(m, dims, expect_strides, table),
            });
        }
        if buf.remaining() > 0 {
            return Err(corrupt("oversized kernel-cache image"));
        }
        Ok(KernelCache { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeclusteringMethod, DiskModulo, Hcam, MethodRegistry};

    fn sample_map() -> AllocationMap {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let hcam = Hcam::new(&space, 5).unwrap();
        AllocationMap::from_method(&space, &hcam).unwrap()
    }

    /// The same image downgraded to the legacy v1 layout: version field
    /// patched and the checksum trailer stripped.
    fn as_v1(v2: &[u8]) -> Vec<u8> {
        let mut v1 = v2[..v2.len() - 4].to_vec();
        v1[4..6].copy_from_slice(&V1.to_le_bytes());
        v1
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let map = sample_map();
        let bytes = map.to_bytes();
        let loaded = AllocationMap::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, map);
        assert_eq!(loaded.name(), "HCAM");
        assert_eq!(loaded.num_disks(), 5);
        assert_eq!(loaded.space().dims(), &[8, 8]);
    }

    #[test]
    fn roundtrip_every_registry_method() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let registry = MethodRegistry::default();
        for method in registry.with_baselines(&space, 8) {
            let map = AllocationMap::from_method(&space, method.as_ref()).unwrap();
            let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
            assert_eq!(loaded, map, "{}", method.name());
            assert_eq!(loaded.name(), map.name());
        }
    }

    #[test]
    fn wide_disk_counts_use_u32_cells() {
        let space = GridSpace::new_2d(32, 32).unwrap();
        let dm = DiskModulo::new(&space, 300).unwrap();
        let map = AllocationMap::from_method(&space, &dm).unwrap();
        let bytes = map.to_bytes();
        let loaded = AllocationMap::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, map);
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let space = GridSpace::new_cube(3, 8).unwrap();
        let dm = DiskModulo::new(&space, 7).unwrap();
        let map = AllocationMap::from_method(&space, &dm).unwrap();
        assert_eq!(AllocationMap::from_bytes(&map.to_bytes()).unwrap(), map);
    }

    #[test]
    fn trailer_is_crc32_of_the_payload() {
        let bytes = sample_map().to_bytes();
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        assert_eq!(
            u32::from_le_bytes(trailer.try_into().unwrap()),
            crc32(payload)
        );
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
    }

    #[test]
    fn legacy_v1_images_still_load() {
        let map = sample_map();
        let v1 = as_v1(&map.to_bytes());
        let loaded = AllocationMap::from_bytes(&v1).unwrap();
        assert_eq!(loaded, map);
        assert_eq!(loaded.name(), "HCAM");
    }

    #[test]
    fn checksum_mismatch_is_reported_as_such() {
        let map = sample_map();
        let mut bad = map.to_bytes().to_vec();
        // Flip one bit deep in the disk table: only the checksum notices.
        let mid = bad.len() - 10;
        bad[mid] ^= 0x01;
        match AllocationMap::from_bytes(&bad).unwrap_err() {
            MethodError::CorruptImage { reason } => {
                assert!(reason.contains("checksum"), "reason: {reason}")
            }
            other => panic!("expected CorruptImage, got {other:?}"),
        }
    }

    #[test]
    fn rejects_corruption() {
        let map = sample_map();
        let good = map.to_bytes();

        // Bad magic.
        let mut bad = good.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            AllocationMap::from_bytes(&bad).unwrap_err(),
            MethodError::CorruptImage { .. }
        ));

        // Unsupported version (patch + strip trailer so the checksum
        // cannot mask the version check).
        let mut bad = as_v1(&good);
        bad[4] = 0xFF;
        assert!(AllocationMap::from_bytes(&bad).is_err());

        // Truncated table.
        let bad = &good[..good.len() - 3];
        assert!(AllocationMap::from_bytes(bad).is_err());
        let bad = &as_v1(&good)[..good.len() - 7];
        assert!(AllocationMap::from_bytes(bad).is_err());

        // Oversized input: trailing garbage after a valid v1 image.
        let mut bad = as_v1(&good);
        bad.extend_from_slice(&[0, 0, 0]);
        match AllocationMap::from_bytes(&bad).unwrap_err() {
            MethodError::CorruptImage { reason } => {
                assert!(reason.contains("oversized"), "reason: {reason}")
            }
            other => panic!("expected CorruptImage, got {other:?}"),
        }

        // Empty input.
        assert!(AllocationMap::from_bytes(&[]).is_err());

        // Out-of-range disk in the table (v1, so no checksum to trip
        // first — exercises the semantic validation).
        let mut bad = as_v1(&good);
        let last = bad.len() - 1;
        bad[last] = 200; // m = 5
        assert!(AllocationMap::from_bytes(&bad).is_err());
    }

    #[test]
    fn unknown_method_names_load_as_table() {
        let space = GridSpace::new_2d(2, 2).unwrap();
        let map = AllocationMap::from_table(&space, 2, vec![0, 1, 1, 0]).unwrap();
        let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
        assert_eq!(loaded.name(), "TABLE");
        assert_eq!(loaded, map);
    }

    /// Pins the v2 allocation image byte for byte (and its v1 downgrade),
    /// so the kernel-image work cannot drift the legacy formats: any
    /// image written before persist v3 must keep loading unchanged.
    #[test]
    fn v1_and_v2_allocation_layouts_are_pinned() {
        let space = GridSpace::new_2d(2, 2).unwrap();
        let map = AllocationMap::from_table(&space, 2, vec![0, 1, 1, 0]).unwrap();
        let mut expected = Vec::new();
        expected.extend_from_slice(b"DCLA");
        expected.extend_from_slice(&2u16.to_le_bytes()); // version
        expected.extend_from_slice(&2u16.to_le_bytes()); // k
        expected.extend_from_slice(&2u32.to_le_bytes()); // dims[0]
        expected.extend_from_slice(&2u32.to_le_bytes()); // dims[1]
        expected.extend_from_slice(&2u32.to_le_bytes()); // m
        expected.push(5);
        expected.extend_from_slice(b"TABLE");
        expected.extend_from_slice(&[0, 1, 1, 0]); // u8 cells (m <= 256)
        expected.extend_from_slice(&crc32(&expected).to_le_bytes());
        assert_eq!(map.to_bytes().as_ref(), expected.as_slice());
        assert_eq!(AllocationMap::from_bytes(&expected).unwrap(), map);
        assert_eq!(AllocationMap::from_bytes(&as_v1(&expected)).unwrap(), map);
    }

    fn table_map(space: &GridSpace, m: u32, salt: u32) -> AllocationMap {
        let total = space.num_buckets() as usize;
        let table = (0..total as u32).map(|i| (i + salt) % m).collect();
        AllocationMap::from_table(space, m, table).unwrap()
    }

    #[test]
    fn kernel_cache_roundtrips_and_revalidates() {
        let map = sample_map();
        let kernel = map.disk_counts().unwrap();
        let mut cache = KernelCache::new();
        assert!(cache.is_empty());
        cache.insert("HCAM", &map, &kernel);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains("HCAM"));

        let loaded = KernelCache::from_bytes(&cache.to_bytes()).unwrap();
        let warm = loaded.lookup("HCAM", &map).expect("identity matches");
        assert_eq!(warm.lane_bits(), kernel.lane_bits());
        assert_eq!(warm.num_disks(), kernel.num_disks());
        // The loaded kernel answers queries identically to the built one.
        let space = map.space();
        for (lo, hi) in [([0u32, 0u32], [7u32, 7u32]), ([1, 2], [5, 6])] {
            let r = decluster_grid::BucketRegion::new(space, lo.into(), hi.into()).unwrap();
            assert_eq!(warm.access_histogram(&r), kernel.access_histogram(&r));
        }
    }

    #[test]
    fn kernel_cache_is_lane_width_aware() {
        let map = sample_map();
        let narrow = map.disk_counts().unwrap();
        let wide = DiskCounts::build_wide(&map).unwrap();
        assert_eq!(narrow.lane_bits(), 16);
        assert_eq!(wide.lane_bits(), 32);
        for kernel in [&narrow, &wide] {
            let mut cache = KernelCache::new();
            cache.insert("HCAM", &map, kernel);
            let warm = KernelCache::from_bytes(&cache.to_bytes())
                .unwrap()
                .lookup("HCAM", &map)
                .unwrap();
            assert_eq!(warm.lane_bits(), kernel.lane_bits());
        }
    }

    #[test]
    fn stale_images_miss_instead_of_misreading() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let map = table_map(&space, 4, 0);
        let mut cache = KernelCache::new();
        cache.insert("TABLE", &map, &map.disk_counts().unwrap());

        // Same name ("TABLE"), different disk table: identity mismatch.
        let retabled = table_map(&space, 4, 1);
        assert!(cache.lookup("TABLE", &retabled).is_none());
        // Same name, different grid: shape mismatch.
        let regridded = table_map(&GridSpace::new_2d(4, 16).unwrap(), 4, 0);
        assert!(cache.lookup("TABLE", &regridded).is_none());
        // Same name, different disk count.
        let redisked = table_map(&space, 8, 0);
        assert!(cache.lookup("TABLE", &redisked).is_none());
        // The exact allocation still hits.
        assert!(cache.lookup("TABLE", &map).is_some());
        // A method name never inserted misses.
        let hcam = sample_map();
        assert!(cache.lookup("HCAM", &hcam).is_none());
    }

    #[test]
    fn cache_bytes_are_canonical_regardless_of_insertion_order() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let hcam = sample_map();
        let dm_map = {
            let dm = DiskModulo::new(&space, 5).unwrap();
            AllocationMap::from_method(&space, &dm).unwrap()
        };
        let (hk, dk) = (hcam.disk_counts().unwrap(), dm_map.disk_counts().unwrap());
        let mut a = KernelCache::new();
        a.insert("HCAM", &hcam, &hk);
        a.insert("DM", &dm_map, &dk);
        let mut b = KernelCache::new();
        b.insert("DM", &dm_map, &dk);
        b.insert("HCAM", &hcam, &hk);
        assert_eq!(a.to_bytes(), b.to_bytes());
        // Re-inserting under the same name replaces, not duplicates.
        a.insert("HCAM", &hcam, &hk);
        assert_eq!(a.len(), 2);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn empty_cache_roundtrips() {
        let cache = KernelCache::new();
        let loaded = KernelCache::from_bytes(&cache.to_bytes()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn kernel_cache_rejects_structural_corruption() {
        let map = sample_map();
        let mut cache = KernelCache::new();
        cache.insert("TABLE", &map, &map.disk_counts().unwrap());
        let good = cache.to_bytes();

        // Bad magic (an allocation image is not a kernel cache).
        assert!(matches!(
            KernelCache::from_bytes(&map.to_bytes()).unwrap_err(),
            MethodError::CorruptImage { .. }
        ));
        // Trailing garbage.
        let mut bad = good.to_vec();
        bad.extend_from_slice(&[0; 3]);
        assert!(KernelCache::from_bytes(&bad).is_err());
        // Empty input.
        assert!(KernelCache::from_bytes(&[]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any well-formed table round-trips bit-exactly.
        #[test]
        fn arbitrary_tables_roundtrip(
            d0 in 1u32..8, d1 in 1u32..8, m in 1u32..300, seed in any::<u64>()
        ) {
            let space = GridSpace::new_2d(d0, d1).unwrap();
            let total = (d0 * d1) as usize;
            // Deterministic pseudo-random table from the seed.
            let table: Vec<u32> = (0..total)
                .map(|i| ((seed.wrapping_mul(i as u64 + 1) >> 7) % u64::from(m)) as u32)
                .collect();
            let map = AllocationMap::from_table(&space, m, table).unwrap();
            let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
            prop_assert_eq!(loaded, map);
        }

        /// Random byte strings never panic the parser (they error instead).
        #[test]
        fn fuzzed_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = AllocationMap::from_bytes(&data);
        }

        /// Flipping any single byte of a valid checksummed image is
        /// always rejected: CRC-32 detects every single-byte error, and
        /// the only checksum-free escape hatch (patching the version
        /// field down to 1) leaves the trailer as 4 surplus bytes that
        /// trip the length check.
        #[test]
        fn single_byte_corruption_is_rejected(flip in 0usize..200, xor in 1u8..255) {
            let space = GridSpace::new_2d(4, 4).unwrap();
            let map = AllocationMap::from_table(
                &space, 3, (0..16).map(|i| i % 3).collect()
            ).unwrap();
            let mut bytes = map.to_bytes().to_vec();
            let idx = flip % bytes.len();
            bytes[idx] ^= xor;
            prop_assert!(AllocationMap::from_bytes(&bytes).is_err());
        }

        /// Truncating a checksummed image at any point is rejected.
        #[test]
        fn any_truncation_is_rejected(cut in 0usize..200) {
            let space = GridSpace::new_2d(4, 4).unwrap();
            let map = AllocationMap::from_table(
                &space, 3, (0..16).map(|i| i % 3).collect()
            ).unwrap();
            let bytes = map.to_bytes();
            let cut = cut % bytes.len();
            prop_assert!(AllocationMap::from_bytes(&bytes[..cut]).is_err());
        }

        /// Persist v3 round-trip: any kernel image survives
        /// serialize → deserialize with its lookup revalidating and the
        /// re-serialized bytes identical (a canonical fixpoint).
        #[test]
        fn kernel_images_roundtrip(
            d0 in 1u32..8, d1 in 1u32..8, m in 1u32..12, seed in any::<u64>()
        ) {
            let space = GridSpace::new_2d(d0, d1).unwrap();
            let total = (d0 * d1) as usize;
            let table: Vec<u32> = (0..total)
                .map(|i| ((seed.wrapping_mul(i as u64 + 1) >> 7) % u64::from(m)) as u32)
                .collect();
            let map = AllocationMap::from_table(&space, m, table).unwrap();
            let kernel = map.disk_counts().unwrap();
            let mut cache = KernelCache::new();
            cache.insert("HCAM", &map, &kernel);
            let bytes = cache.to_bytes();
            let loaded = KernelCache::from_bytes(&bytes).unwrap();
            prop_assert_eq!(loaded.to_bytes(), bytes);
            let warm = loaded.lookup("HCAM", &map).expect("identity must revalidate");
            prop_assert_eq!(warm.lane_bits(), kernel.lane_bits());
            // Full-grid histogram equality pins the whole table.
            let r = decluster_grid::BucketRegion::new(
                &space, [0, 0].into(), [d0 - 1, d1 - 1].into()
            ).unwrap();
            prop_assert_eq!(warm.access_histogram(&r), kernel.access_histogram(&r));
        }

        /// Flipping any single byte of a kernel-cache image is always a
        /// typed `CorruptImage` error — the v2 methodology applied to v3:
        /// CRC-32 detects every single-byte error, and v3 has no
        /// checksum-free legacy escape hatch at all.
        #[test]
        fn kernel_image_single_byte_corruption_is_rejected(
            flip in 0usize..1000, xor in 1u8..255
        ) {
            let space = GridSpace::new_2d(4, 4).unwrap();
            let map = AllocationMap::from_table(
                &space, 3, (0..16).map(|i| i % 3).collect()
            ).unwrap();
            let mut cache = KernelCache::new();
            cache.insert("TABLE", &map, &map.disk_counts().unwrap());
            let mut bytes = cache.to_bytes().to_vec();
            let idx = flip % bytes.len();
            bytes[idx] ^= xor;
            prop_assert!(matches!(
                KernelCache::from_bytes(&bytes).unwrap_err(),
                MethodError::CorruptImage { .. }
            ));
        }

        /// Truncating a kernel-cache image at any point is rejected.
        #[test]
        fn kernel_image_truncation_is_rejected(cut in 0usize..1000) {
            let space = GridSpace::new_2d(4, 4).unwrap();
            let map = AllocationMap::from_table(
                &space, 3, (0..16).map(|i| i % 3).collect()
            ).unwrap();
            let mut cache = KernelCache::new();
            cache.insert("TABLE", &map, &map.disk_counts().unwrap());
            let bytes = cache.to_bytes();
            let cut = cut % bytes.len();
            prop_assert!(KernelCache::from_bytes(&bytes[..cut]).is_err());
        }

        /// Random byte strings never panic the kernel-cache parser.
        #[test]
        fn fuzzed_kernel_cache_bytes_never_panic(
            data in proptest::collection::vec(any::<u8>(), 0..300)
        ) {
            let _ = KernelCache::from_bytes(&data);
        }
    }
}
