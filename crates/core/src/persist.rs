//! Binary persistence for materialized allocations.
//!
//! A parallel database computes an allocation once (possibly via the
//! advisor or the GDM tuner) and must reload it identically at every
//! restart — the whole premise of static declustering is that the
//! bucket→disk map never changes behind the system's back. This module
//! gives [`AllocationMap`] a versioned, self-describing binary format:
//!
//! ```text
//! "DCLA" | version u16 | k u16 | dims[k] u32 | M u32 |
//! name_len u8 | name bytes | disk table (u8 per bucket if M ≤ 256, else u32)
//! ```
//!
//! All integers little-endian. Round-trips exactly; unknown method names
//! load as `"TABLE"` (the map itself is what matters).

use crate::{AllocationMap, DeclusteringMethod, MethodError, MethodKind, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use decluster_grid::GridSpace;

const MAGIC: &[u8; 4] = b"DCLA";
const VERSION: u16 = 1;

impl AllocationMap {
    /// Serializes the allocation to its binary format.
    pub fn to_bytes(&self) -> Bytes {
        let space = self.space();
        let table = self.table();
        let m = self.num_disks();
        let name = crate::DeclusteringMethod::name(self);
        let mut buf = BytesMut::with_capacity(
            4 + 2 + 2 + 4 * space.k() + 4 + 1 + name.len() + table.len() * 4,
        );
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(space.k() as u16);
        for &d in space.dims() {
            buf.put_u32_le(d);
        }
        buf.put_u32_le(m);
        let name_bytes = &name.as_bytes()[..name.len().min(255)];
        buf.put_u8(name_bytes.len() as u8);
        buf.put_slice(name_bytes);
        if m <= 256 {
            for &d in table {
                buf.put_u8(d as u8);
            }
        } else {
            for &d in table {
                buf.put_u32_le(d);
            }
        }
        buf.freeze()
    }

    /// Deserializes an allocation written by [`AllocationMap::to_bytes`].
    ///
    /// # Errors
    /// [`MethodError::UnsupportedGrid`] with a descriptive reason for any
    /// malformed input (bad magic, truncation, shape mismatch,
    /// out-of-range disks).
    pub fn from_bytes(data: &[u8]) -> Result<AllocationMap> {
        let corrupt = |reason: &str| MethodError::UnsupportedGrid {
            method: "AllocationMap::from_bytes",
            reason: reason.to_owned(),
        };
        let mut buf = data;
        if buf.remaining() < 8 {
            return Err(corrupt("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(corrupt("unsupported version"));
        }
        let k = buf.get_u16_le() as usize;
        if k == 0 || buf.remaining() < 4 * k + 4 + 1 {
            return Err(corrupt("truncated dimensions"));
        }
        let dims: Vec<u32> = (0..k).map(|_| buf.get_u32_le()).collect();
        let m = buf.get_u32_le();
        let name_len = buf.get_u8() as usize;
        if buf.remaining() < name_len {
            return Err(corrupt("truncated name"));
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| corrupt("name not UTF-8"))?;
        let space = GridSpace::new(dims).map_err(MethodError::from)?;
        let total = usize::try_from(space.num_buckets()).map_err(|_| corrupt("grid too large"))?;
        let cell = if m <= 256 { 1 } else { 4 };
        if buf.remaining() != total * cell {
            return Err(corrupt("table length mismatch"));
        }
        let table: Vec<u32> = (0..total)
            .map(|_| {
                if m <= 256 {
                    u32::from(buf.get_u8())
                } else {
                    buf.get_u32_le()
                }
            })
            .collect();
        let map = AllocationMap::from_table(&space, m, table)?;
        // Restore the stable method name when it is one we know.
        Ok(match MethodKind::parse(&name) {
            Ok(kind) => map.renamed(kind.name()),
            Err(_) => map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeclusteringMethod, DiskModulo, Hcam, MethodRegistry};

    fn sample_map() -> AllocationMap {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let hcam = Hcam::new(&space, 5).unwrap();
        AllocationMap::from_method(&space, &hcam).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let map = sample_map();
        let bytes = map.to_bytes();
        let loaded = AllocationMap::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, map);
        assert_eq!(loaded.name(), "HCAM");
        assert_eq!(loaded.num_disks(), 5);
        assert_eq!(loaded.space().dims(), &[8, 8]);
    }

    #[test]
    fn roundtrip_every_registry_method() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let registry = MethodRegistry::default();
        for method in registry.with_baselines(&space, 8) {
            let map = AllocationMap::from_method(&space, method.as_ref()).unwrap();
            let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
            assert_eq!(loaded, map, "{}", method.name());
            assert_eq!(loaded.name(), map.name());
        }
    }

    #[test]
    fn wide_disk_counts_use_u32_cells() {
        let space = GridSpace::new_2d(32, 32).unwrap();
        let dm = DiskModulo::new(&space, 300).unwrap();
        let map = AllocationMap::from_method(&space, &dm).unwrap();
        let bytes = map.to_bytes();
        let loaded = AllocationMap::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, map);
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let space = GridSpace::new_cube(3, 8).unwrap();
        let dm = DiskModulo::new(&space, 7).unwrap();
        let map = AllocationMap::from_method(&space, &dm).unwrap();
        assert_eq!(AllocationMap::from_bytes(&map.to_bytes()).unwrap(), map);
    }

    #[test]
    fn rejects_corruption() {
        let map = sample_map();
        let good = map.to_bytes();

        // Bad magic.
        let mut bad = good.to_vec();
        bad[0] = b'X';
        assert!(AllocationMap::from_bytes(&bad).is_err());

        // Bad version.
        let mut bad = good.to_vec();
        bad[4] = 0xFF;
        assert!(AllocationMap::from_bytes(&bad).is_err());

        // Truncated table.
        let bad = &good[..good.len() - 3];
        assert!(AllocationMap::from_bytes(bad).is_err());

        // Trailing garbage.
        let mut bad = good.to_vec();
        bad.extend_from_slice(&[0, 0, 0]);
        assert!(AllocationMap::from_bytes(&bad).is_err());

        // Empty input.
        assert!(AllocationMap::from_bytes(&[]).is_err());

        // Out-of-range disk in the table.
        let mut bad = good.to_vec();
        let last = bad.len() - 1;
        bad[last] = 200; // m = 5
        assert!(AllocationMap::from_bytes(&bad).is_err());
    }

    #[test]
    fn unknown_method_names_load_as_table() {
        let space = GridSpace::new_2d(2, 2).unwrap();
        let map = AllocationMap::from_table(&space, 2, vec![0, 1, 1, 0]).unwrap();
        let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
        assert_eq!(loaded.name(), "TABLE");
        assert_eq!(loaded, map);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any well-formed table round-trips bit-exactly.
        #[test]
        fn arbitrary_tables_roundtrip(
            d0 in 1u32..8, d1 in 1u32..8, m in 1u32..300, seed in any::<u64>()
        ) {
            let space = GridSpace::new_2d(d0, d1).unwrap();
            let total = (d0 * d1) as usize;
            // Deterministic pseudo-random table from the seed.
            let table: Vec<u32> = (0..total)
                .map(|i| ((seed.wrapping_mul(i as u64 + 1) >> 7) % u64::from(m)) as u32)
                .collect();
            let map = AllocationMap::from_table(&space, m, table).unwrap();
            let loaded = AllocationMap::from_bytes(&map.to_bytes()).unwrap();
            prop_assert_eq!(loaded, map);
        }

        /// Random byte strings never panic the parser (they error instead).
        #[test]
        fn fuzzed_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = AllocationMap::from_bytes(&data);
        }

        /// Flipping any single byte of a valid image either fails to
        /// parse or yields a *well-formed* allocation (never panics,
        /// never violates the disk-range invariant).
        #[test]
        fn single_byte_corruption_is_contained(flip in 0usize..200, xor in 1u8..255) {
            let space = GridSpace::new_2d(4, 4).unwrap();
            let map = AllocationMap::from_table(
                &space, 3, (0..16).map(|i| i % 3).collect()
            ).unwrap();
            let mut bytes = map.to_bytes().to_vec();
            let idx = flip % bytes.len();
            bytes[idx] ^= xor;
            if let Ok(loaded) = AllocationMap::from_bytes(&bytes) {
                let m = loaded.num_disks();
                prop_assert!(loaded.table().iter().all(|&d| d < m));
            }
        }
    }
}
