use crate::{DeclusteringMethod, MethodError, Result};
use decluster_grid::{DiskId, GridSpace};
use decluster_hilbert::HilbertCurve;

/// Hilbert Curve Allocation Method (HCAM), Faloutsos & Bhagwat (PDIS
/// 1993).
///
/// The k-dimensional Hilbert curve linearizes the grid's buckets; disks are
/// dealt round-robin along the curve: `disk = H(i₁, …, i_k) mod M`. The
/// curve's clustering property (successive buckets are grid neighbours)
/// means buckets close in space get different disks, which is why the '94
/// study finds HCAM strongest on small/square range queries.
///
/// Grids whose sides are not powers of two are covered by the smallest
/// enclosing power-of-two curve; out-of-grid curve points are skipped, so
/// the round-robin deal stays gap-free over real buckets. The walk
/// materializes a bucket→disk table at construction (`O(2^(k·b))` time,
/// one `u32` per bucket of memory).
#[derive(Clone, Debug)]
pub struct Hcam {
    m: u32,
    space: GridSpace,
    /// Disk per row-major linear bucket id.
    table: Vec<u32>,
}

impl Hcam {
    /// Creates an HCAM instance for `space` over `m` disks by walking the
    /// covering Hilbert curve once.
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`; curve construction errors
    /// for degenerate grids.
    pub fn new(space: &GridSpace, m: u32) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        let curve = HilbertCurve::covering(space.dims())?;
        let total =
            usize::try_from(space.num_buckets()).map_err(|_| MethodError::UnsupportedGrid {
                method: "HCAM",
                reason: "grid too large to materialize".into(),
            })?;
        let mut table = vec![0u32; total];
        let mut rank_in_grid: u64 = 0;
        for point in curve.iter() {
            let inside = point.iter().zip(space.dims()).all(|(&c, &d)| c < d);
            if !inside {
                continue;
            }
            let id = space.linearize_unchecked(&point);
            table[id as usize] = (rank_in_grid % u64::from(m)) as u32;
            rank_in_grid += 1;
        }
        debug_assert_eq!(rank_in_grid, space.num_buckets());
        Ok(Hcam {
            m,
            space: space.clone(),
            table,
        })
    }

    /// The grid this instance was materialized for.
    pub fn space(&self) -> &GridSpace {
        &self.space
    }
}

impl DeclusteringMethod for Hcam {
    fn name(&self) -> &'static str {
        "HCAM"
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        let id = self.space.linearize_unchecked(bucket);
        DiskId(self.table[id as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_disks() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        assert_eq!(Hcam::new(&g, 0).unwrap_err(), MethodError::ZeroDisks);
    }

    #[test]
    fn load_is_near_perfectly_balanced() {
        // Round-robin along a complete walk: loads differ by at most 1.
        for (dims, m) in [
            (vec![8u32, 8], 5u32),
            (vec![8, 8], 4),
            (vec![6, 10], 7), // non-power-of-two sides
            (vec![4, 4, 4], 6),
        ] {
            let g = GridSpace::new(dims.clone()).unwrap();
            let h = Hcam::new(&g, m).unwrap();
            let mut counts = vec![0u64; m as usize];
            for b in g.iter() {
                counts[h.disk_of(b.as_slice()).index()] += 1;
            }
            let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(hi - lo <= 1, "dims {dims:?} m {m}: {counts:?}");
        }
    }

    #[test]
    fn consecutive_curve_buckets_get_consecutive_disks() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let m = 5u32;
        let h = Hcam::new(&g, m).unwrap();
        let curve = HilbertCurve::covering(g.dims()).unwrap();
        let mut prev: Option<u32> = None;
        for p in curve.iter() {
            let disk = h.disk_of(&[p[0], p[1]]).0;
            if let Some(pd) = prev {
                assert_eq!(disk, (pd + 1) % m);
            }
            prev = Some(disk);
        }
    }

    #[test]
    fn skips_out_of_grid_points_without_gaps() {
        // A 3x5 grid inside an 8x8 curve: every disk count within 1.
        let g = GridSpace::new_2d(3, 5).unwrap();
        let h = Hcam::new(&g, 4).unwrap();
        let mut counts = [0u64; 4];
        for b in g.iter() {
            counts[h.disk_of(b.as_slice()).index()] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), 15);
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(hi - lo <= 1, "{counts:?}");
    }

    #[test]
    fn single_bucket_grid() {
        let g = GridSpace::new(vec![1, 1]).unwrap();
        let h = Hcam::new(&g, 3).unwrap();
        assert_eq!(h.disk_of(&[0, 0]), DiskId(0));
    }

    #[test]
    fn three_dimensions() {
        let g = GridSpace::new_cube(3, 4).unwrap();
        let h = Hcam::new(&g, 8).unwrap();
        let mut counts = vec![0u64; 8];
        for b in g.iter() {
            counts[h.disk_of(b.as_slice()).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 8), "{counts:?}");
    }

    #[test]
    fn more_disks_than_buckets() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        let h = Hcam::new(&g, 100).unwrap();
        // Four buckets on four distinct disks (first four along the curve).
        let mut disks: Vec<u32> = g.iter().map(|b| h.disk_of(b.as_slice()).0).collect();
        disks.sort_unstable();
        disks.dedup();
        assert_eq!(disks.len(), 4);
    }
}
