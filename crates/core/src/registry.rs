use crate::{
    CurveAlloc, CurveKind, DeclusteringMethod, DiskModulo, EccDecluster, FieldwiseXor,
    GeneralizedDiskModulo, Hcam, MethodError, RandomAlloc, Result, RoundRobin,
};
use decluster_grid::GridSpace;

/// The methods the registry can construct.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Disk Modulo / CMD.
    Dm,
    /// Binary Disk Modulo (radix-coefficient GDM).
    Bdm,
    /// Field-wise XOR (auto FX/ExFX).
    Fx,
    /// Error-correcting-code cosets.
    Ecc,
    /// Hilbert curve allocation.
    Hcam,
    /// Z-order curve allocation (HCAM ablation).
    Zcam,
    /// Gray-coded-order allocation (HCAM ablation).
    GrayCam,
    /// Row-major round-robin baseline.
    RoundRobin,
    /// Seeded random baseline.
    Random,
}

impl MethodKind {
    /// The paper's four grid-based methods, in the order its figures list
    /// them.
    pub const PAPER: [MethodKind; 4] = [
        MethodKind::Dm,
        MethodKind::Fx,
        MethodKind::Ecc,
        MethodKind::Hcam,
    ];

    /// Every kind the registry knows.
    pub const ALL: [MethodKind; 9] = [
        MethodKind::Dm,
        MethodKind::Bdm,
        MethodKind::Fx,
        MethodKind::Ecc,
        MethodKind::Hcam,
        MethodKind::Zcam,
        MethodKind::GrayCam,
        MethodKind::RoundRobin,
        MethodKind::Random,
    ];

    /// Stable name (matches `DeclusteringMethod::name` for these kinds).
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Dm => "DM",
            MethodKind::Bdm => "BDM",
            MethodKind::Fx => "FX",
            MethodKind::Ecc => "ECC",
            MethodKind::Hcam => "HCAM",
            MethodKind::Zcam => "ZCAM",
            MethodKind::GrayCam => "GrayCAM",
            MethodKind::RoundRobin => "RR",
            MethodKind::Random => "RND",
        }
    }

    /// The accepted names and aliases, for error messages and CLI help.
    pub const ACCEPTED_NAMES: &'static str =
        "DM/CMD, BDM, FX/ExFX, ECC, HCAM, ZCAM, GrayCAM, RR, RND";

    /// Parses a kind from a (case-insensitive) name. `"CMD"` is accepted
    /// as an alias of DM, `"ExFX"` of FX. Equivalent to the [`FromStr`]
    /// impl.
    ///
    /// # Errors
    /// [`MethodError::UnknownMethod`] for anything else.
    pub fn parse(name: &str) -> Result<Self> {
        name.parse()
    }
}

impl std::str::FromStr for MethodKind {
    type Err = MethodError;

    fn from_str(name: &str) -> Result<Self> {
        match name.to_ascii_uppercase().as_str() {
            "DM" | "CMD" | "DM/CMD" => Ok(MethodKind::Dm),
            "BDM" => Ok(MethodKind::Bdm),
            "FX" | "EXFX" => Ok(MethodKind::Fx),
            "ECC" => Ok(MethodKind::Ecc),
            "HCAM" => Ok(MethodKind::Hcam),
            "ZCAM" => Ok(MethodKind::Zcam),
            "GRAYCAM" => Ok(MethodKind::GrayCam),
            "RR" | "ROUNDROBIN" | "ROUND-ROBIN" => Ok(MethodKind::RoundRobin),
            "RND" | "RANDOM" => Ok(MethodKind::Random),
            _ => Err(MethodError::UnknownMethod { name: name.into() }),
        }
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Constructs declustering methods by kind or name for a given grid and
/// disk count, and assembles the standard comparison sets the experiment
/// harness sweeps.
#[derive(Clone, Debug)]
pub struct MethodRegistry {
    seed: u64,
}

impl Default for MethodRegistry {
    fn default() -> Self {
        MethodRegistry { seed: 0xDEC1_0570 }
    }
}

impl MethodRegistry {
    /// A registry whose random baseline uses `seed`.
    pub fn with_seed(seed: u64) -> Self {
        MethodRegistry { seed }
    }

    /// Builds one method instance.
    ///
    /// # Errors
    /// Whatever the method's constructor rejects (e.g. ECC on
    /// non-power-of-two configurations).
    pub fn build(
        &self,
        kind: MethodKind,
        space: &GridSpace,
        m: u32,
    ) -> Result<Box<dyn DeclusteringMethod>> {
        Ok(match kind {
            MethodKind::Dm => Box::new(DiskModulo::new(space, m)?),
            MethodKind::Bdm => Box::new(GeneralizedDiskModulo::bdm(space, m)?),
            MethodKind::Fx => Box::new(FieldwiseXor::new(space, m)?),
            MethodKind::Ecc => Box::new(EccDecluster::new(space, m)?),
            MethodKind::Hcam => Box::new(Hcam::new(space, m)?),
            MethodKind::Zcam => Box::new(CurveAlloc::new(space, m, CurveKind::Morton)?),
            MethodKind::GrayCam => Box::new(CurveAlloc::new(space, m, CurveKind::Gray)?),
            MethodKind::RoundRobin => Box::new(RoundRobin::new(space, m)?),
            MethodKind::Random => Box::new(RandomAlloc::new(space, m, self.seed)?),
        })
    }

    /// Builds a method by name (see [`MethodKind::parse`]).
    ///
    /// # Errors
    /// Unknown names and constructor failures.
    pub fn build_by_name(
        &self,
        name: &str,
        space: &GridSpace,
        m: u32,
    ) -> Result<Box<dyn DeclusteringMethod>> {
        self.build(MethodKind::parse(name)?, space, m)
    }

    /// The paper's four methods on this configuration, skipping any whose
    /// constructor rejects it (e.g. ECC when `M` is not a power of two —
    /// matching how the study only reports methods where they apply).
    pub fn paper_methods(&self, space: &GridSpace, m: u32) -> Vec<Box<dyn DeclusteringMethod>> {
        MethodKind::PAPER
            .iter()
            .filter_map(|&k| self.build(k, space, m).ok())
            .collect()
    }

    /// The paper's methods plus the RR and RND baselines.
    pub fn with_baselines(&self, space: &GridSpace, m: u32) -> Vec<Box<dyn DeclusteringMethod>> {
        let mut v = self.paper_methods(space, m);
        for kind in [MethodKind::RoundRobin, MethodKind::Random] {
            if let Ok(built) = self.build(kind, space, m) {
                v.push(built);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fromstr_and_display_roundtrip() {
        for kind in MethodKind::ALL {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.to_string().parse::<MethodKind>().unwrap(), kind);
        }
        let err = "zorp".parse::<MethodKind>().unwrap_err();
        assert!(err.to_string().contains("HCAM"), "{err}");
    }

    #[test]
    fn parse_accepts_aliases_and_case() {
        assert_eq!(MethodKind::parse("cmd").unwrap(), MethodKind::Dm);
        assert_eq!(MethodKind::parse("exfx").unwrap(), MethodKind::Fx);
        assert_eq!(MethodKind::parse("HCAM").unwrap(), MethodKind::Hcam);
        assert_eq!(
            MethodKind::parse("round-robin").unwrap(),
            MethodKind::RoundRobin
        );
        assert!(matches!(
            MethodKind::parse("nope").unwrap_err(),
            MethodError::UnknownMethod { .. }
        ));
    }

    #[test]
    fn build_all_kinds_on_power_of_two_grid() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let reg = MethodRegistry::default();
        for kind in MethodKind::ALL {
            let m = reg.build(kind, &g, 8).unwrap();
            assert_eq!(m.name(), kind.name(), "{kind:?}");
            assert_eq!(m.num_disks(), 8);
        }
    }

    #[test]
    fn paper_set_drops_ecc_on_unsupported_config() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let reg = MethodRegistry::default();
        let with6: Vec<&str> = reg.paper_methods(&g, 6).iter().map(|m| m.name()).collect();
        assert_eq!(with6, vec!["DM", "FX", "HCAM"]);
        let with8: Vec<&str> = reg.paper_methods(&g, 8).iter().map(|m| m.name()).collect();
        assert_eq!(with8, vec!["DM", "FX", "ECC", "HCAM"]);
    }

    #[test]
    fn with_baselines_appends_rr_and_rnd() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let reg = MethodRegistry::default();
        let names: Vec<&str> = reg.with_baselines(&g, 4).iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["DM", "FX", "ECC", "HCAM", "RR", "RND"]);
    }

    #[test]
    fn build_by_name_roundtrips() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let reg = MethodRegistry::with_seed(7);
        assert_eq!(reg.build_by_name("dm", &g, 4).unwrap().name(), "DM");
        assert!(reg.build_by_name("mystery", &g, 4).is_err());
    }

    #[test]
    fn fx_name_reflects_extension() {
        // On a 4x4 grid with 16 disks the registry's FX reports "ExFX".
        let g = GridSpace::new_2d(4, 4).unwrap();
        let reg = MethodRegistry::default();
        let fx = reg.build(MethodKind::Fx, &g, 16).unwrap();
        assert_eq!(fx.name(), "ExFX");
    }
}
