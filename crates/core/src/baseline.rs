use crate::{DeclusteringMethod, MethodError, Result};
use decluster_grid::{DiskId, GridSpace};

/// Row-major round-robin baseline: `disk = linearize(bucket) mod M`.
///
/// The naive "deal pages in scan order" allocation every comparison needs
/// as a floor. Identical to BDM on this grid (see
/// [`crate::GeneralizedDiskModulo::bdm`]) but kept separate so reports can
/// show the baseline by name.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    m: u32,
    space: GridSpace,
}

impl RoundRobin {
    /// Creates a round-robin baseline for `space` over `m` disks.
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`.
    pub fn new(space: &GridSpace, m: u32) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        Ok(RoundRobin {
            m,
            space: space.clone(),
        })
    }
}

impl DeclusteringMethod for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        DiskId((self.space.linearize_unchecked(bucket) % u64::from(self.m)) as u32)
    }
}

/// Seeded pseudo-random baseline: `disk = splitmix64(seed ⊕ linearize(bucket)) mod M`.
///
/// Deterministic for a given seed, so experiments are reproducible, but
/// structure-free: the canonical "no spatial intelligence" comparison
/// point. Uses a SplitMix64 finalizer rather than the `rand` crate so the
/// assignment is a pure O(1) function of the bucket (no state, no
/// materialization).
#[derive(Clone, Debug)]
pub struct RandomAlloc {
    m: u32,
    seed: u64,
    space: GridSpace,
}

impl RandomAlloc {
    /// Creates a random baseline for `space` over `m` disks with the given
    /// seed.
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`.
    pub fn new(space: &GridSpace, m: u32, seed: u64) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        Ok(RandomAlloc {
            m,
            seed,
            space: space.clone(),
        })
    }
}

impl DeclusteringMethod for RandomAlloc {
    fn name(&self) -> &'static str {
        "RND"
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        let id = self.space.linearize_unchecked(bucket);
        DiskId((crate::splitmix64(self.seed ^ id) % u64::from(self.m)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_follows_scan_order() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        let rr = RoundRobin::new(&g, 3).unwrap();
        assert_eq!(rr.disk_of(&[0, 0]), DiskId(0));
        assert_eq!(rr.disk_of(&[0, 1]), DiskId(1));
        assert_eq!(rr.disk_of(&[0, 2]), DiskId(2));
        assert_eq!(rr.disk_of(&[0, 3]), DiskId(0));
        assert_eq!(rr.disk_of(&[1, 0]), DiskId(1));
        assert_eq!(rr.name(), "RR");
    }

    #[test]
    fn round_robin_balances_perfectly_when_divisible() {
        let g = GridSpace::new_2d(6, 6).unwrap();
        let rr = RoundRobin::new(&g, 4).unwrap();
        let mut counts = [0u64; 4];
        for b in g.iter() {
            counts[rr.disk_of(b.as_slice()).index()] += 1;
        }
        assert_eq!(counts, [9, 9, 9, 9]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let a = RandomAlloc::new(&g, 7, 42).unwrap();
        let b = RandomAlloc::new(&g, 7, 42).unwrap();
        let c = RandomAlloc::new(&g, 7, 43).unwrap();
        let mut differs = false;
        for bucket in g.iter() {
            assert_eq!(a.disk_of(bucket.as_slice()), b.disk_of(bucket.as_slice()));
            differs |= a.disk_of(bucket.as_slice()) != c.disk_of(bucket.as_slice());
        }
        assert!(differs, "different seeds should give different allocations");
    }

    #[test]
    fn random_spreads_over_all_disks() {
        let g = GridSpace::new_2d(32, 32).unwrap();
        let r = RandomAlloc::new(&g, 8, 1).unwrap();
        let mut counts = [0u64; 8];
        for b in g.iter() {
            counts[r.disk_of(b.as_slice()).index()] += 1;
        }
        // 1024 buckets over 8 disks: expect 128 each; allow generous slack.
        assert!(counts.iter().all(|&c| c > 64 && c < 256), "{counts:?}");
    }

    #[test]
    fn zero_disks_rejected() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        assert!(RoundRobin::new(&g, 0).is_err());
        assert!(RandomAlloc::new(&g, 0, 0).is_err());
    }
}
