//! The crate's one deterministic hash: the SplitMix64 finalizer
//! (Steele et al., "Fast splittable pseudorandom number generators",
//! OOPSLA 2014).
//!
//! Three independent call sites grew their own copy of this mix — the
//! [`crate::RandomAlloc`] baseline, the simulator's hot-pool redirect
//! hash, and the degraded serve loop's retry jitter — and all three
//! participate in bit-for-bit determinism contracts (allocations,
//! overlap streams, and retry schedules must not change across
//! refactors). This module is now the single definition; the pin tests
//! below hold the exact output words so any drift is caught at the
//! source rather than in a downstream diff.

/// The SplitMix64 finalizer: a bijective avalanche mix of one 64-bit
/// word. Equivalent to one `next()` step of the reference generator
/// seeded at `seed` (golden-ratio increment included), so published
/// SplitMix64 test vectors apply directly.
#[inline]
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`splitmix64`] mapped to `[0, 1)` by taking the top 53 bits as an
/// IEEE-exact dyadic fraction — the form both simulator call sites
/// (hot-pool hash, retry jitter) use.
#[inline]
#[must_use]
pub fn splitmix64_unit(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference SplitMix64 stream from seed 0: our finalizer at state
    /// `k · golden` must reproduce output `k + 1` of the published
    /// generator.
    #[test]
    fn matches_published_splitmix64_vectors() {
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
    }

    /// Pins the exact words the three historical copies produced, so
    /// every call site stays bit-identical across the deduplication.
    #[test]
    fn call_site_outputs_are_pinned() {
        // `RandomAlloc::mix` (crates/core/src/baseline.rs).
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0xDEAD_BEEF), 0x4ADF_B90F_68C9_EB9B);
        // `index_hash01` (crates/sim/src/experiment.rs): unit form over
        // a bare index.
        assert_eq!(splitmix64_unit(0).to_bits(), 0x3FEC_4415_072F_63B9);
        assert_eq!(splitmix64_unit(7).to_bits(), 0x3FD8_F2F8_7916_4C82);
        assert_eq!(splitmix64_unit(123_456).to_bits(), 0x3FCC_F32D_C0BE_B2C8);
        // `retry_jitter01` (crates/sim/src/events.rs): unit form over the
        // (seed, query, attempt) pre-mix.
        let jitter = |seed: u64, query: u64, attempt: u32| {
            splitmix64_unit(
                seed ^ query.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 32),
            )
        };
        assert_eq!(jitter(9, 5, 2).to_bits(), 0x3FC8_2457_F635_E09C);
        assert_eq!(jitter(1994, 0, 0).to_bits(), 0x3FB5_F42D_0431_A8D0);
        assert_eq!(jitter(42, 17, 3).to_bits(), 0x3FCB_F744_1E0D_2EC0);
    }

    /// Every output in `[0, 1)`, never 1.0 (the >> 11 leaves 53 bits).
    #[test]
    fn unit_form_stays_in_range() {
        for seed in [0u64, 1, u64::MAX, 0x5555_5555_5555_5555] {
            let u = splitmix64_unit(seed);
            assert!((0.0..1.0).contains(&u), "unit({seed}) = {u}");
        }
    }
}
