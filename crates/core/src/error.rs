use std::fmt;

/// Errors produced when constructing or applying a declustering method.
///
/// Marked `#[non_exhaustive]`: future variants are not breaking
/// changes, so match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MethodError {
    /// Every method needs at least one disk.
    ZeroDisks,
    /// A quantity the method requires to be a power of two is not.
    NotPowerOfTwo {
        /// Which quantity (e.g. "number of disks", "partitions on dimension 1").
        what: String,
        /// The offending value.
        value: u64,
    },
    /// The method cannot serve this grid/disk combination.
    UnsupportedGrid {
        /// Method name.
        method: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// GDM was given the wrong number of coefficients.
    CoefficientMismatch {
        /// Grid dimensionality.
        expected: usize,
        /// Coefficients supplied.
        got: usize,
    },
    /// An unknown method name was requested from the registry.
    UnknownMethod {
        /// The requested name.
        name: String,
    },
    /// A persisted allocation image is malformed (truncated, bit-flipped,
    /// oversized, or failing its checksum).
    CorruptImage {
        /// Human-readable reason.
        reason: String,
    },
    /// The advisor needs a non-empty workload sample.
    EmptyWorkload,
    /// An underlying grid error.
    Grid(decluster_grid::GridError),
    /// An underlying Hilbert-curve error.
    Hilbert(decluster_hilbert::HilbertError),
    /// An underlying coding-theory error.
    Ecc(decluster_ecc::EccError),
}

impl fmt::Display for MethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodError::ZeroDisks => write!(f, "at least one disk is required"),
            MethodError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            MethodError::UnsupportedGrid { method, reason } => {
                write!(f, "{method} cannot decluster this grid: {reason}")
            }
            MethodError::CoefficientMismatch { expected, got } => {
                write!(f, "GDM needs {expected} coefficients, got {got}")
            }
            MethodError::UnknownMethod { name } => write!(
                f,
                "unknown method {name:?} (accepted: {})",
                crate::MethodKind::ACCEPTED_NAMES
            ),
            MethodError::CorruptImage { reason } => {
                write!(f, "corrupt allocation image: {reason}")
            }
            MethodError::EmptyWorkload => write!(f, "workload sample must be non-empty"),
            MethodError::Grid(e) => write!(f, "grid error: {e}"),
            MethodError::Hilbert(e) => write!(f, "hilbert error: {e}"),
            MethodError::Ecc(e) => write!(f, "coding error: {e}"),
        }
    }
}

impl std::error::Error for MethodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MethodError::Grid(e) => Some(e),
            MethodError::Hilbert(e) => Some(e),
            MethodError::Ecc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<decluster_grid::GridError> for MethodError {
    fn from(e: decluster_grid::GridError) -> Self {
        MethodError::Grid(e)
    }
}

impl From<decluster_hilbert::HilbertError> for MethodError {
    fn from(e: decluster_hilbert::HilbertError) -> Self {
        MethodError::Hilbert(e)
    }
}

impl From<decluster_ecc::EccError> for MethodError {
    fn from(e: decluster_ecc::EccError) -> Self {
        MethodError::Ecc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(MethodError::ZeroDisks.to_string().contains("disk"));
        let e = MethodError::NotPowerOfTwo {
            what: "number of disks".into(),
            value: 6,
        };
        assert!(e.to_string().contains("6"));
        let e = MethodError::UnknownMethod {
            name: "zorp".into(),
        };
        assert!(e.to_string().contains("zorp"));
        let e = MethodError::CorruptImage {
            reason: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = MethodError::from(decluster_grid::GridError::EmptyGrid);
        assert!(e.source().is_some());
        assert!(MethodError::ZeroDisks.source().is_none());
    }
}
