use crate::{DeclusteringMethod, MethodError, Result};
use decluster_grid::{DiskId, GridSpace};

/// Field-wise eXclusive-or (FX) declustering, Kim & Pramanik (SIGMOD
/// 1988), with the ExFX extension for narrow dimensions.
///
/// Plain FX assigns bucket `<i₁, …, i_k>` to disk
/// `(i₁ ⊕ i₂ ⊕ … ⊕ i_k) mod M`, XORing the binary representations of the
/// coordinate values. The '94 study uses FX whenever every dimension has at
/// least `M` partitions and ExFX otherwise.
///
/// **ExFX** (engaged automatically by [`FieldwiseXor::new`] when some
/// `d_i < M`): the XOR of values all below `M` cannot reach every disk, so
/// each coordinate is placed at its cumulative bit offset within a
/// `ceil(log2 M)`-bit window (rotating on wrap-around) before XORing.
/// Each placement is a per-coordinate bijection; when the coordinate bits
/// fit the window without wrapping, ExFX degenerates to bit concatenation
/// and reaches every disk the grid can reach. (The precise published ExFX
/// table-driven construction is in the SIGMOD'88 paper; see DESIGN.md §4
/// for why this rendering is behaviour-preserving for the study — all the
/// paper's experiments run plain FX.)
#[derive(Clone, Debug)]
pub struct FieldwiseXor {
    m: u32,
    k: usize,
    /// `None` = plain FX; `Some(w)` = ExFX with a `w`-bit window.
    extended_width: Option<u32>,
    /// Per-dimension rotation offsets (cumulative bit widths), used by ExFX.
    dim_offsets: Vec<u32>,
}

impl FieldwiseXor {
    /// Creates an FX instance, selecting plain FX when all `d_i ≥ M` and
    /// ExFX otherwise.
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`.
    pub fn new(space: &GridSpace, m: u32) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        let needs_extension = space.dims().iter().any(|&d| d < m);
        // Offset of dimension i = total bits of dimensions 0..i.
        let mut dim_offsets = Vec::with_capacity(space.k());
        let mut acc = 0u32;
        for &d in space.dims() {
            dim_offsets.push(acc);
            acc += bits_for(d.max(2));
        }
        Ok(FieldwiseXor {
            m,
            k: space.k(),
            extended_width: needs_extension.then(|| bits_for(m.max(2))),
            dim_offsets,
        })
    }

    /// Forces plain FX regardless of dimension widths (for experiments
    /// that want the unextended method).
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`.
    pub fn plain(space: &GridSpace, m: u32) -> Result<Self> {
        let mut fx = FieldwiseXor::new(space, m)?;
        fx.extended_width = None;
        Ok(fx)
    }

    /// Whether this instance runs the ExFX extension.
    pub fn is_extended(&self) -> bool {
        self.extended_width.is_some()
    }

    /// Rotates `value` left by `rot` within a `width`-bit window: the
    /// ExFX field placement. A bijection on the window for any rotation.
    fn rotate_in_window(value: u32, width: u32, rot: u32) -> u32 {
        debug_assert!(width >= 1);
        let mask = if width >= 32 {
            u32::MAX
        } else {
            (1 << width) - 1
        };
        let value = value & mask;
        let rot = rot % width;
        if rot == 0 {
            value
        } else {
            ((value << rot) | (value >> (width - rot))) & mask
        }
    }
}

/// Number of bits needed to represent values `0..d`.
fn bits_for(d: u32) -> u32 {
    32 - (d - 1).leading_zeros()
}

impl DeclusteringMethod for FieldwiseXor {
    fn name(&self) -> &'static str {
        if self.is_extended() {
            "ExFX"
        } else {
            "FX"
        }
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        debug_assert_eq!(bucket.len(), self.k);
        let x = match self.extended_width {
            None => bucket.iter().fold(0u32, |acc, &c| acc ^ c),
            Some(width) => bucket.iter().enumerate().fold(0u32, |acc, (dim, &c)| {
                // Rotate within a window wide enough for both the disk
                // count and this coordinate, so placement stays a
                // bijection even on mixed-width grids.
                let w = width.max(bits_for(c.max(1) + 1));
                acc ^ Self::rotate_in_window(c, w, self.dim_offsets[dim])
            }),
        };
        DiskId(x % self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fx_is_xor_mod_m() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let fx = FieldwiseXor::new(&g, 8).unwrap();
        assert!(!fx.is_extended());
        assert_eq!(fx.name(), "FX");
        assert_eq!(fx.disk_of(&[0b1010, 0b0110]), DiskId(0b1100 % 8));
        assert_eq!(fx.disk_of(&[5, 5]), DiskId(0));
        assert_eq!(fx.disk_of(&[15, 0]), DiskId(15 % 8));
    }

    #[test]
    fn bits_for_counts_correctly() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(64), 6);
        assert_eq!(bits_for(65), 7);
    }

    #[test]
    fn extension_engages_when_dims_narrow() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        let fx = FieldwiseXor::new(&g, 16).unwrap();
        assert!(fx.is_extended());
        assert_eq!(fx.name(), "ExFX");
        // With widening, more than the bottom 4 disk values are reachable.
        let mut used = std::collections::BTreeSet::new();
        for b in g.iter() {
            used.insert(fx.disk_of(b.as_slice()).0);
        }
        // Plain FX would reach only XOR values 0..4 (4 disks); ExFX must
        // reach strictly more on this 16-bucket grid.
        assert!(used.len() > 4, "ExFX reached only {used:?}");
    }

    #[test]
    fn plain_constructor_suppresses_extension() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        let fx = FieldwiseXor::plain(&g, 16).unwrap();
        assert!(!fx.is_extended());
        let mut used = std::collections::BTreeSet::new();
        for b in g.iter() {
            used.insert(fx.disk_of(b.as_slice()).0);
        }
        assert_eq!(used.into_iter().max().unwrap(), 3);
    }

    #[test]
    fn rejects_zero_disks() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        assert_eq!(
            FieldwiseXor::new(&g, 0).unwrap_err(),
            MethodError::ZeroDisks
        );
    }

    #[test]
    fn fx_rows_permute_disks_on_power_of_two_grid() {
        // With d = M = 8: XOR with a fixed row index permutes 0..8, so each
        // row spreads perfectly over the disks.
        let g = GridSpace::new_2d(8, 8).unwrap();
        let fx = FieldwiseXor::new(&g, 8).unwrap();
        for row in 0..8u32 {
            let mut seen = [false; 8];
            for col in 0..8u32 {
                seen[fx.disk_of(&[row, col]).index()] = true;
            }
            assert!(seen.iter().all(|&s| s), "row {row}");
        }
    }

    #[test]
    fn rotate_in_window_is_injective() {
        // Rotation is a bijection on the window for any rotation amount.
        for rot in 0..8 {
            let mut outs = std::collections::BTreeSet::new();
            for v in 0..16u32 {
                outs.insert(FieldwiseXor::rotate_in_window(v, 4, rot));
            }
            assert_eq!(outs.len(), 16, "rot={rot}");
        }
        assert_eq!(FieldwiseXor::rotate_in_window(0b0011, 4, 2), 0b1100);
        assert_eq!(FieldwiseXor::rotate_in_window(0b1001, 4, 1), 0b0011);
    }

    #[test]
    fn exfx_reaches_every_disk_when_buckets_allow() {
        // 4x4 grid, M=16: exactly one bucket per disk is achievable and
        // the concatenation-degenerate ExFX achieves it.
        let g = GridSpace::new_2d(4, 4).unwrap();
        let fx = FieldwiseXor::new(&g, 16).unwrap();
        let mut used = std::collections::BTreeSet::new();
        for b in g.iter() {
            used.insert(fx.disk_of(b.as_slice()).0);
        }
        assert_eq!(used.len(), 16);
    }

    #[test]
    fn exfx_handles_mixed_width_grids() {
        // One narrow and one wide dimension: all disks in range, wide
        // coordinates not truncated into collisions along the wide axis.
        let g = GridSpace::new(vec![4, 64]).unwrap();
        let fx = FieldwiseXor::new(&g, 16).unwrap();
        assert!(fx.is_extended());
        for b in g.iter() {
            assert!(fx.disk_of(b.as_slice()).0 < 16);
        }
        // Fixing the narrow coordinate, the wide axis alone should spread
        // across many disks.
        let mut used = std::collections::BTreeSet::new();
        for c in 0..64u32 {
            used.insert(fx.disk_of(&[0, c]).0);
        }
        assert!(used.len() >= 8, "only {used:?}");
    }

    #[test]
    fn three_dimensional_fx() {
        let g = GridSpace::new_cube(3, 16).unwrap();
        let fx = FieldwiseXor::new(&g, 16).unwrap();
        assert_eq!(fx.disk_of(&[0b1111, 0b1111, 0b1111]), DiskId(0b1111));
        assert_eq!(fx.disk_of(&[1, 2, 4]), DiskId(7));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn disk_always_in_range(m in 1u32..64, x in 0u32..64, y in 0u32..64, z in 0u32..64) {
            let g = GridSpace::new_cube(3, 64).unwrap();
            let fx = FieldwiseXor::new(&g, m).unwrap();
            prop_assert!(fx.disk_of(&[x, y, z]).0 < m);
        }

        #[test]
        fn exfx_disk_always_in_range(m in 1u32..64, x in 0u32..4, y in 0u32..4) {
            let g = GridSpace::new_2d(4, 4).unwrap();
            let fx = FieldwiseXor::new(&g, m).unwrap();
            prop_assert!(fx.disk_of(&[x, y]).0 < m);
        }

        #[test]
        fn fx_is_symmetric_in_its_fields(m in 1u32..32, x in 0u32..32, y in 0u32..32) {
            let g = GridSpace::new_2d(32, 32).unwrap();
            let fx = FieldwiseXor::plain(&g, m).unwrap();
            prop_assert_eq!(fx.disk_of(&[x, y]), fx.disk_of(&[y, x]));
        }
    }
}
