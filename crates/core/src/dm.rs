use crate::{DeclusteringMethod, MethodError, Result};
use decluster_grid::{DiskId, GridSpace};

/// Disk Modulo (DM) / Coordinate Modulo Declustering (CMD).
///
/// Du & Sobolewski's original proposal (TODS 1982), independently analyzed
/// as CMD by Li, Srivastava & Rotem (VLDB 1992): bucket `<i₁, …, i_k>`
/// goes to disk `(i₁ + i₂ + … + i_k) mod M`.
///
/// Strictly optimal for all partial-match queries with exactly one
/// unspecified attribute, and for all partial-match queries with an
/// unspecified attribute `i` such that `d_i mod M = 0` (see
/// `decluster-theory::partial_match`). The '94 study finds it weakest on
/// small range queries and competitive on large ones.
#[derive(Clone, Debug)]
pub struct DiskModulo {
    m: u32,
    k: usize,
}

impl DiskModulo {
    /// Creates a DM instance for `space` over `m` disks.
    ///
    /// DM applies to every grid; only `m == 0` is rejected.
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`.
    pub fn new(space: &GridSpace, m: u32) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        Ok(DiskModulo { m, k: space.k() })
    }

    /// Grid dimensionality this instance was built for.
    pub fn dims(&self) -> usize {
        self.k
    }
}

impl DeclusteringMethod for DiskModulo {
    fn name(&self) -> &'static str {
        "DM"
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        debug_assert_eq!(bucket.len(), self.k);
        let sum: u64 = bucket.iter().map(|&c| u64::from(c)).sum();
        DiskId((sum % u64::from(self.m)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::BucketCoord;

    #[test]
    fn assigns_coordinate_sum_mod_m() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&g, 5).unwrap();
        assert_eq!(dm.disk_of(&[0, 0]), DiskId(0));
        assert_eq!(dm.disk_of(&[2, 3]), DiskId(0));
        assert_eq!(dm.disk_of(&[7, 7]), DiskId(4));
        assert_eq!(dm.name(), "DM");
        assert_eq!(dm.num_disks(), 5);
    }

    #[test]
    fn rejects_zero_disks() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        assert_eq!(DiskModulo::new(&g, 0).unwrap_err(), MethodError::ZeroDisks);
    }

    #[test]
    fn diagonal_buckets_share_a_disk() {
        // DM's signature: anti-diagonals i+j = const are co-located.
        let g = GridSpace::new_2d(6, 6).unwrap();
        let dm = DiskModulo::new(&g, 6).unwrap();
        for s in 0..6u32 {
            let disks: Vec<DiskId> = (0..=s).map(|i| dm.disk_of(&[i, s - i])).collect();
            assert!(disks.windows(2).all(|w| w[0] == w[1]), "antidiagonal {s}");
        }
    }

    #[test]
    fn row_is_a_permutation_of_disks_when_d_multiple_of_m() {
        // With d_i = 8 and M = 4, each row uses each disk exactly d/M times.
        let g = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        for row in 0..8u32 {
            let mut counts = [0u32; 4];
            for col in 0..8u32 {
                counts[dm.disk_of(&[row, col]).index()] += 1;
            }
            assert_eq!(counts, [2, 2, 2, 2]);
        }
    }

    #[test]
    fn works_in_three_dimensions() {
        let g = GridSpace::new_cube(3, 4).unwrap();
        let dm = DiskModulo::new(&g, 3).unwrap();
        assert_eq!(dm.disk_of(&[1, 2, 3]), DiskId(0));
        assert_eq!(dm.disk_of(&[3, 3, 3]), DiskId(0));
        assert_eq!(dm.disk_of(&[0, 0, 1]), DiskId(1));
    }

    #[test]
    fn more_disks_than_buckets_is_legal() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        let dm = DiskModulo::new(&g, 100).unwrap();
        // Sums 0..=2 only: most disks simply stay empty.
        for b in g.iter() {
            assert!(dm.disk_of(b.as_slice()).0 < 100);
        }
        let _ = BucketCoord::origin(2);
    }
}
