//! Kernel-backed per-disk page counts for a [`GridDirectory`].
//!
//! The multi-user simulator's closed-loop, open-loop, and degraded loops
//! never look at page *identities* — they only need "how many pages must
//! disk `d` fetch for this query", i.e. the lengths of the I/O plan's
//! per-disk groups. [`PlanCounts`] answers exactly that straight from the
//! [`DiskCounts`] prefix-sum kernel in `O(M · 2^k)` per query with zero
//! allocation, instead of enumerating all `|Q|` buckets of the region.
//!
//! Correctness rests on a [`GridDirectory::build`] invariant: pages are
//! assigned per disk in row-major bucket order, so the number of pages a
//! region touches on disk `d` equals the number of the region's buckets
//! allocated to `d` — the access histogram of the directory's disk table.

use crate::{AllocationMap, DeclusteringMethod, DiskCounts, PlanCache, Scratch};
use decluster_grid::{BucketRegion, GridDirectory};

/// Per-disk page-count oracle for a directory: a cached prefix-sum kernel
/// with a naive-walk fallback for grids too large to materialize a table.
///
/// Build once per directory, then call [`PlanCounts::counts_into`] per
/// query with a caller-owned [`Scratch`] and output buffer — nothing is
/// allocated per query on either path once the buffers have grown.
#[derive(Clone, Debug)]
pub struct PlanCounts {
    kernel: Option<DiskCounts>,
    fallback: AllocationMap,
}

impl PlanCounts {
    /// Snapshots `dir`'s disk table and builds the count kernel over it.
    ///
    /// Falls back to the naive per-bucket walk (still allocation-free per
    /// query) when the `buckets × disks` table is too large to build; the
    /// choice is observable via [`PlanCounts::kernel_backed`].
    pub fn build(dir: &GridDirectory) -> Self {
        let map = AllocationMap::from_table(dir.space(), dir.num_disks(), dir.disk_table())
            .expect("directory disk table is grid-shaped by construction");
        let kernel = map.disk_counts().ok();
        PlanCounts {
            kernel,
            fallback: map,
        }
    }

    /// Warm-start constructor: snapshots `dir`'s disk table but adopts
    /// `kernel` (typically loaded from a persisted
    /// [`crate::KernelCache`] image) instead of rebuilding it, so no
    /// grid walk happens. With `kernel == None` this is the naive
    /// fallback, as when the table is too large to build.
    ///
    /// # Panics
    /// Panics if `kernel`'s disk count differs from `dir`'s — a loaded
    /// image must already have been revalidated against the directory.
    pub fn with_kernel(dir: &GridDirectory, kernel: Option<DiskCounts>) -> Self {
        let map = AllocationMap::from_table(dir.space(), dir.num_disks(), dir.disk_table())
            .expect("directory disk table is grid-shaped by construction");
        if let Some(k) = &kernel {
            assert_eq!(
                k.num_disks(),
                map.num_disks(),
                "adopted kernel disk count does not match the directory"
            );
        }
        PlanCounts {
            kernel,
            fallback: map,
        }
    }

    /// The compiled kernel, when the grid admitted one (for exporting
    /// into a [`crate::KernelCache`]).
    pub fn kernel(&self) -> Option<&DiskCounts> {
        self.kernel.as_ref()
    }

    /// The materialized allocation backing this oracle (the kernel
    /// image's revalidation identity is computed from it).
    pub fn allocation(&self) -> &AllocationMap {
        &self.fallback
    }

    /// Disks (`M`).
    pub fn num_disks(&self) -> u32 {
        self.fallback.num_disks()
    }

    /// Whether queries are served by the prefix-sum kernel (as opposed to
    /// the naive fallback walk).
    pub fn kernel_backed(&self) -> bool {
        self.kernel.is_some()
    }

    /// Heap footprint of the kernel table in bytes (0 on the fallback).
    pub fn table_bytes(&self) -> usize {
        self.kernel.as_ref().map_or(0, DiskCounts::table_bytes)
    }

    /// Writes the number of pages each disk must fetch for `region` into
    /// `out` (cleared first; `out[d]` == `io_plan` group length for `d`)
    /// and returns the total page count across disks (== the region's
    /// bucket count).
    ///
    /// The kernel path goes through `scratch`'s plan cache, so repeated
    /// shapes amortize corner derivation exactly like RT scoring does.
    pub fn counts_into(
        &self,
        region: &BucketRegion,
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) -> u64 {
        match &self.kernel {
            Some(k) => k.access_histogram_with(region, scratch, out),
            None => self.fallback.access_histogram_into(region, out),
        }
        out.iter().sum()
    }

    /// As [`PlanCounts::counts_into`], resolving the corner plan through
    /// a cross-query [`PlanCache`] instead of the scratch's single slot:
    /// the serving-loop entry point, where arrivals interleave shapes
    /// that a one-slot cache would thrash on.
    pub fn counts_into_cached(
        &self,
        region: &BucketRegion,
        plans: &mut PlanCache,
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) -> u64 {
        match &self.kernel {
            Some(k) => k.access_histogram_cached(region, plans, scratch, out),
            None => self.fallback.access_histogram_into(region, out),
        }
        out.iter().sum()
    }
}

/// Per-query attribution of a [`SharedScan::absorb`] step.
///
/// `own_pages` is what the query would have read alone; `fresh_pages` is
/// what its absorption actually added to the merged schedule. The
/// difference is the I/O the shared scan saved for this query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShareAttribution {
    /// Pages the query's individual plan touches.
    pub own_pages: u64,
    /// Pages newly added to the merged plan (not already scheduled by an
    /// earlier query in the window).
    pub fresh_pages: u64,
}

impl ShareAttribution {
    /// Pages this query did not have to read because an earlier query in
    /// the window already scheduled them.
    pub fn saved_pages(&self) -> u64 {
        self.own_pages - self.fresh_pages
    }
}

/// Shared-count accumulator: merges the [`IoPlan`]s of a batch window's
/// queries into one deduplicated per-disk page schedule, attributing to
/// each query how many pages it added versus shared.
///
/// The three arenas (incoming plan, merged schedule, swap buffer) are
/// reused across windows, so a warmed accumulator absorbs queries with
/// zero heap allocation — the same contract as [`PlanCounts`].
///
/// [`IoPlan`]: decluster_grid::IoPlan
#[derive(Clone, Debug, Default)]
pub struct SharedScan {
    merged: decluster_grid::IoPlan,
    incoming: decluster_grid::IoPlan,
    swap: decluster_grid::IoPlan,
}

impl SharedScan {
    /// An empty accumulator (call [`SharedScan::begin`] before absorbing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new window over `num_disks` disks, discarding any merged
    /// schedule from the previous window but keeping buffer capacity.
    pub fn begin(&mut self, num_disks: usize) {
        self.merged.reset(num_disks);
    }

    /// Merges `region`'s I/O plan under `dir` into the window's schedule
    /// and reports the query's attribution.
    ///
    /// # Panics
    /// Panics if `dir`'s disk count differs from the `begin` width.
    pub fn absorb(&mut self, dir: &GridDirectory, region: &BucketRegion) -> ShareAttribution {
        dir.io_plan_into(region, &mut self.incoming);
        let before = self.merged.total_pages();
        self.swap.merge_union(&self.merged, &self.incoming);
        std::mem::swap(&mut self.swap, &mut self.merged);
        ShareAttribution {
            own_pages: self.incoming.total_pages() as u64,
            fresh_pages: (self.merged.total_pages() - before) as u64,
        }
    }

    /// The window's merged, deduplicated per-disk schedule so far.
    pub fn merged(&self) -> &decluster_grid::IoPlan {
        &self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModulo;
    use decluster_grid::{GridSpace, IoPlan};

    fn dm_directory(w: u32, h: u32, m: u32) -> GridDirectory {
        let g = GridSpace::new_2d(w, h).unwrap();
        let dm = DiskModulo::new(&g, m).unwrap();
        GridDirectory::build(g, m, |b| dm.disk_of(b.as_slice()))
    }

    #[test]
    fn counts_equal_io_plan_group_lengths() {
        let dir = dm_directory(8, 8, 4);
        let pc = PlanCounts::build(&dir);
        assert!(pc.kernel_backed());
        assert_eq!(pc.num_disks(), 4);
        let mut scratch = Scratch::new();
        let mut counts = Vec::new();
        let mut plan = IoPlan::new();
        let g = dir.space().clone();
        for (lo, hi) in [
            ([0u32, 0u32], [7u32, 7u32]),
            ([1, 1], [3, 6]),
            ([5, 2], [5, 2]),
        ] {
            let r = BucketRegion::new(&g, lo.into(), hi.into()).unwrap();
            let total = pc.counts_into(&r, &mut scratch, &mut counts);
            assert_eq!(total, r.num_buckets(), "returned total is the page sum");
            dir.io_plan_into(&r, &mut plan);
            let derived: Vec<u64> = (0..plan.num_disks())
                .map(|d| plan.disk_pages(d).len() as u64)
                .collect();
            assert_eq!(counts, derived);
        }
    }

    #[test]
    fn shared_scan_attributes_overlap_and_dedups() {
        let dir = dm_directory(8, 8, 4);
        let g = dir.space().clone();
        let a = BucketRegion::new(&g, [0, 0].into(), [3, 3].into()).unwrap();
        let b = BucketRegion::new(&g, [2, 2].into(), [5, 5].into()).unwrap();
        let mut scan = SharedScan::new();
        scan.begin(4);
        let first = scan.absorb(&dir, &a);
        assert_eq!(first.own_pages, 16);
        assert_eq!(first.fresh_pages, 16, "first query shares nothing");
        assert_eq!(first.saved_pages(), 0);
        let second = scan.absorb(&dir, &b);
        assert_eq!(second.own_pages, 16);
        // The [2,2]..[3,3] overlap (4 buckets) is already scheduled.
        assert_eq!(second.fresh_pages, 12);
        assert_eq!(second.saved_pages(), 4);
        assert_eq!(scan.merged().total_pages(), 28);
        // The merged schedule equals the per-disk set union of both plans.
        let (mut pa, mut pb) = (IoPlan::new(), IoPlan::new());
        dir.io_plan_into(&a, &mut pa);
        dir.io_plan_into(&b, &mut pb);
        for d in 0..4 {
            let mut expect: Vec<u64> = pa.disk_pages(d).to_vec();
            expect.extend_from_slice(pb.disk_pages(d));
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(scan.merged().disk_pages(d), expect.as_slice());
        }
        // begin() starts the next window from scratch.
        scan.begin(4);
        assert_eq!(scan.merged().total_pages(), 0);
        assert_eq!(scan.absorb(&dir, &a).fresh_pages, 16);
    }

    #[test]
    fn fallback_walk_matches_kernel() {
        let dir = dm_directory(6, 6, 3);
        let kernel_backed = PlanCounts::build(&dir);
        let naive = PlanCounts {
            kernel: None,
            fallback: kernel_backed.fallback.clone(),
        };
        assert!(!naive.kernel_backed());
        assert_eq!(naive.table_bytes(), 0);
        let g = dir.space().clone();
        let r = BucketRegion::new(&g, [1, 0].into(), [4, 5].into()).unwrap();
        let mut scratch = Scratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        kernel_backed.counts_into(&r, &mut scratch, &mut a);
        naive.counts_into(&r, &mut scratch, &mut b);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{DiskModulo, FieldwiseXor, RandomAlloc, RoundRobin};
    use decluster_grid::{GridSpace, IoPlan};
    use proptest::prelude::*;

    /// Random grid (k in 1..=3, dims ≤ 32), method, and in-grid region —
    /// the same population as the kernel proptests in `prefix.rs`.
    fn grid_method_region() -> impl Strategy<Value = (GridSpace, AllocationMap, BucketRegion)> {
        (proptest::collection::vec(1u32..=32, 1..4), 2u32..=8, 0u8..4).prop_flat_map(
            |(dims, m, which)| {
                let g = GridSpace::new(dims.clone()).unwrap();
                let method: Box<dyn DeclusteringMethod> = match which {
                    0 => Box::new(DiskModulo::new(&g, m).unwrap()),
                    1 => Box::new(FieldwiseXor::new(&g, m).unwrap()),
                    2 => Box::new(RoundRobin::new(&g, m).unwrap()),
                    _ => Box::new(RandomAlloc::new(&g, m, 42).unwrap()),
                };
                let map = AllocationMap::from_method(&g, method.as_ref()).unwrap();
                proptest::collection::vec(0u64..u64::MAX, dims.len()..dims.len() + 1).prop_map(
                    move |raws| {
                        let mut lo = Vec::with_capacity(raws.len());
                        let mut hi = Vec::with_capacity(raws.len());
                        for (raw, &d) in raws.iter().zip(&dims) {
                            let a = (raw % u64::from(d)) as u32;
                            let b = ((raw >> 32) % u64::from(d)) as u32;
                            lo.push(a.min(b));
                            hi.push(a.max(b));
                        }
                        let r = BucketRegion::new(&g, lo.into(), hi.into()).unwrap();
                        (g.clone(), map.clone(), r)
                    },
                )
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The tentpole invariant: the kernel-backed count fast path
        /// equals counts derived from the materialized I/O plan, for any
        /// grid, method, and region.
        #[test]
        fn plan_counts_equal_io_plan_lengths((g, map, r) in grid_method_region()) {
            let dir = GridDirectory::build(g, map.num_disks(), |b| map.disk_of(b.as_slice()));
            let pc = PlanCounts::build(&dir);
            let mut scratch = Scratch::new();
            let mut counts = Vec::new();
            pc.counts_into(&r, &mut scratch, &mut counts);
            let mut plan = IoPlan::new();
            dir.io_plan_into(&r, &mut plan);
            let derived: Vec<u64> = (0..plan.num_disks())
                .map(|d| plan.disk_pages(d).len() as u64)
                .collect();
            prop_assert_eq!(counts, derived);
            prop_assert_eq!(plan.total_pages() as u64, r.num_buckets());
        }

        /// Shared-scan invariant: absorbing any window of regions yields,
        /// per disk, exactly the sorted deduplicated union of the
        /// individual plans' page groups, and the attribution totals
        /// reconcile (fresh sums to the merged size, own − fresh to the
        /// pages saved).
        #[test]
        fn merged_plan_is_the_deduplicated_union(
            (g, map, r) in grid_method_region(),
            picks in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 1..5),
        ) {
            let dir = GridDirectory::build(g.clone(), map.num_disks(), |b| map.disk_of(b.as_slice()));
            let m = map.num_disks() as usize;
            // Derive a window of regions from the base region's grid.
            let dims: Vec<u32> = g.dims().to_vec();
            let mut window = vec![r];
            for &(lo_raw, hi_raw) in &picks {
                let mut lo = Vec::with_capacity(dims.len());
                let mut hi = Vec::with_capacity(dims.len());
                for (a, &d) in dims.iter().enumerate() {
                    let x = ((lo_raw >> (8 * a)) % u64::from(d)) as u32;
                    let y = ((hi_raw >> (8 * a)) % u64::from(d)) as u32;
                    lo.push(x.min(y));
                    hi.push(x.max(y));
                }
                window.push(BucketRegion::new(&g, lo.into(), hi.into()).unwrap());
            }
            let mut scan = SharedScan::new();
            scan.begin(m);
            let mut fresh_sum = 0u64;
            let mut saved_sum = 0u64;
            for region in &window {
                let att = scan.absorb(&dir, region);
                fresh_sum += att.fresh_pages;
                saved_sum += att.saved_pages();
                prop_assert_eq!(att.own_pages, region.num_buckets());
            }
            // Per-disk: merged group == sorted dedup union of the plans.
            let mut plan = IoPlan::new();
            let mut union: Vec<std::collections::BTreeSet<u64>> =
                vec![std::collections::BTreeSet::new(); m];
            let mut own_sum = 0u64;
            for region in &window {
                dir.io_plan_into(region, &mut plan);
                own_sum += plan.total_pages() as u64;
                for (d, set) in union.iter_mut().enumerate() {
                    set.extend(plan.disk_pages(d).iter().copied());
                }
            }
            for (d, set) in union.iter().enumerate() {
                let expect: Vec<u64> = set.iter().copied().collect();
                prop_assert_eq!(scan.merged().disk_pages(d), expect.as_slice());
            }
            prop_assert_eq!(fresh_sum, scan.merged().total_pages() as u64);
            prop_assert_eq!(saved_sum, own_sum - fresh_sum);
        }
    }
}
