use crate::{AllocationMap, GeneralizedDiskModulo, MethodError, Result};
use decluster_grid::{BucketRegion, GridSpace};

/// The result of tuning GDM's coefficient vector against a workload.
#[derive(Debug)]
pub struct TunedGdm {
    /// The winning coefficients (reduced mod `M`).
    pub coefficients: Vec<u64>,
    /// Mean response time the winner achieves on the sample.
    pub mean_response_time: f64,
    /// Mean response time of plain DM (all-ones coefficients) on the same
    /// sample, for comparison.
    pub dm_mean_response_time: f64,
    /// The tuned method, materialized.
    pub allocation: AllocationMap,
}

/// Searches GDM coefficient vectors for the one minimizing mean response
/// time over a sampled workload.
///
/// Du's GDM family contains DM (`c = 1…1`) but also the strictly optimal
/// `M = 5` lattice (`c = (1, 2)`), so tuning over it captures real wins
/// the fixed methods leave on the table. The search enumerates all
/// vectors in `{1, …, M−1}^k` with `gcd(cⱼ, M)` unrestricted but skips
/// vectors whose coefficients are all equal to an earlier vector scaled
/// by a unit (those relabel disks without changing response times). For
/// the study's `k ≤ 3` and `M ≤ 32` the space is tiny.
///
/// # Errors
/// [`MethodError::EmptyWorkload`] for an empty sample,
/// [`MethodError::ZeroDisks`] for `m == 0`, and
/// [`MethodError::UnsupportedGrid`] when the enumeration would be too
/// large (`(M−1)^k > 10^6`).
pub fn tune_gdm_coefficients(
    space: &GridSpace,
    m: u32,
    sample: &[BucketRegion],
) -> Result<TunedGdm> {
    if m == 0 {
        return Err(MethodError::ZeroDisks);
    }
    if sample.is_empty() {
        return Err(MethodError::EmptyWorkload);
    }
    let k = space.k();
    let base = u64::from(m.max(2) - 1);
    if base.pow(k as u32) > 1_000_000 {
        return Err(MethodError::UnsupportedGrid {
            method: "GDM tuner",
            reason: format!("coefficient space (M-1)^k = {base}^{k} too large"),
        });
    }

    let score = |coeffs: Vec<u64>| -> Result<(f64, AllocationMap)> {
        let gdm = GeneralizedDiskModulo::new(space, m, coeffs)?;
        let map = AllocationMap::from_method(space, &gdm)?;
        let total: u64 = sample.iter().map(|r| map.response_time(r)).sum();
        Ok((total as f64 / sample.len() as f64, map))
    };

    let (dm_mean, dm_map) = score(vec![1; k])?;
    let mut best_mean = dm_mean;
    let mut best_coeffs = vec![1u64; k];
    let mut best_map = dm_map;

    // Mixed-radix enumeration of {1..M-1}^k (for M = 1 only the all-ones
    // vector exists and the loop body never runs).
    let mut coeffs = vec![1u64; k];
    loop {
        // Canonical-form skip: insist the first coefficient is the
        // smallest unit multiple, i.e. accept only vectors whose first
        // nonzero coefficient is ≤ all unit-scalings. Cheap approximation:
        // skip pure scalings of (1,…,1).
        let is_uniform = coeffs.windows(2).all(|w| w[0] == w[1]);
        if !(is_uniform && coeffs[0] != 1) {
            let (mean, map) = score(coeffs.clone())?;
            if mean < best_mean {
                best_mean = mean;
                best_coeffs = coeffs.clone();
                best_map = map;
            }
        }
        // Advance.
        let mut dim = k;
        loop {
            if dim == 0 {
                return Ok(TunedGdm {
                    coefficients: best_coeffs,
                    mean_response_time: best_mean,
                    dm_mean_response_time: dm_mean,
                    allocation: best_map,
                });
            }
            dim -= 1;
            coeffs[dim] += 1;
            if coeffs[dim] < u64::from(m.max(2)) {
                break;
            }
            coeffs[dim] = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::RangeQuery;

    fn squares(space: &GridSpace, side: u32) -> Vec<BucketRegion> {
        let mut out = Vec::new();
        let step = side + 1;
        let mut r = 0;
        while r + side <= space.dim(0) {
            let mut c = 0;
            while c + side <= space.dim(1) {
                out.push(
                    RangeQuery::new([r, c], [r + side - 1, c + side - 1])
                        .expect("query")
                        .region(space)
                        .expect("fits"),
                );
                c += step;
            }
            r += step;
        }
        out
    }

    #[test]
    fn tuner_finds_the_m5_lattice_class() {
        // On 2x2 squares with M = 5, the (1, 2) lattice achieves the
        // optimum RT = 1 everywhere; DM cannot.
        let space = GridSpace::new_2d(10, 10).unwrap();
        let sample = squares(&space, 2);
        let tuned = tune_gdm_coefficients(&space, 5, &sample).unwrap();
        assert_eq!(tuned.mean_response_time, 1.0, "{:?}", tuned.coefficients);
        assert!(tuned.dm_mean_response_time > 1.0);
        // The winner is a knight's-move lattice: coefficients {1,2}-like
        // (c1/c0 = ±2 mod 5).
        let (a, b) = (tuned.coefficients[0] % 5, tuned.coefficients[1] % 5);
        let ratio_ok = (2 * a) % 5 == b || (2 * b) % 5 == a || (3 * a) % 5 == b || (3 * b) % 5 == a;
        assert!(ratio_ok, "unexpected winner {:?}", tuned.coefficients);
    }

    #[test]
    fn tuner_never_does_worse_than_dm() {
        let space = GridSpace::new_2d(12, 12).unwrap();
        for m in [3u32, 4, 7, 8] {
            let sample = squares(&space, 3);
            let tuned = tune_gdm_coefficients(&space, m, &sample).unwrap();
            assert!(
                tuned.mean_response_time <= tuned.dm_mean_response_time,
                "M={m}"
            );
        }
    }

    #[test]
    fn tuner_validates_inputs() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        assert!(matches!(
            tune_gdm_coefficients(&space, 4, &[]).unwrap_err(),
            MethodError::EmptyWorkload
        ));
        let sample = squares(&space, 2);
        assert!(matches!(
            tune_gdm_coefficients(&space, 0, &sample).unwrap_err(),
            MethodError::ZeroDisks
        ));
    }

    #[test]
    fn tuner_rejects_huge_spaces() {
        let space = GridSpace::new(vec![4, 4, 4, 4, 4]).unwrap();
        let region = BucketRegion::full(&space);
        assert!(matches!(
            tune_gdm_coefficients(&space, 32, &[region]).unwrap_err(),
            MethodError::UnsupportedGrid { .. }
        ));
    }

    #[test]
    fn tuned_allocation_matches_reported_mean() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let sample = squares(&space, 2);
        let tuned = tune_gdm_coefficients(&space, 4, &sample).unwrap();
        let recomputed: u64 = sample
            .iter()
            .map(|r| tuned.allocation.response_time(r))
            .sum();
        assert_eq!(
            recomputed as f64 / sample.len() as f64,
            tuned.mean_response_time
        );
    }
}
