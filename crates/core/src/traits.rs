use decluster_grid::DiskId;

/// A grid-based declustering method: a total function from bucket
/// coordinates to disks.
///
/// Implementations are constructed for a specific grid and disk count and
/// must be **total** (every in-grid bucket gets a disk), **deterministic**,
/// and must return disks in `0..num_disks()`. Those invariants are enforced
/// by each implementation's constructor plus the property tests in this
/// crate; [`crate::AllocationMap::from_method`] additionally asserts the
/// range invariant while materializing.
///
/// The trait is object-safe so heterogeneous method sets can be swept by
/// the experiment harness (`Vec<Box<dyn DeclusteringMethod>>`).
pub trait DeclusteringMethod: Send + Sync {
    /// Short stable name used in reports and the registry
    /// (e.g. `"DM"`, `"FX"`, `"ECC"`, `"HCAM"`).
    fn name(&self) -> &'static str;

    /// Number of disks this instance declusters over (`M`).
    fn num_disks(&self) -> u32;

    /// The disk assigned to the bucket with the given coordinates.
    ///
    /// `bucket` must be an in-grid coordinate vector for the grid the
    /// method was constructed with; implementations may panic or return an
    /// arbitrary in-range disk on out-of-grid input (they never return an
    /// out-of-range disk).
    fn disk_of(&self, bucket: &[u32]) -> DiskId;
}

impl<T: DeclusteringMethod + ?Sized> DeclusteringMethod for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn num_disks(&self) -> u32 {
        (**self).num_disks()
    }
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        (**self).disk_of(bucket)
    }
}

impl<T: DeclusteringMethod + ?Sized> DeclusteringMethod for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn num_disks(&self) -> u32 {
        (**self).num_disks()
    }
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        (**self).disk_of(bucket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl DeclusteringMethod for Fixed {
        fn name(&self) -> &'static str {
            "FIXED"
        }
        fn num_disks(&self) -> u32 {
            1
        }
        fn disk_of(&self, _: &[u32]) -> DiskId {
            DiskId(0)
        }
    }

    #[test]
    fn trait_is_object_safe_and_forwards() {
        let boxed: Box<dyn DeclusteringMethod> = Box::new(Fixed);
        assert_eq!(boxed.name(), "FIXED");
        assert_eq!(boxed.disk_of(&[1, 2]), DiskId(0));
        let by_ref: &dyn DeclusteringMethod = &Fixed;
        assert_eq!((&by_ref).num_disks(), 1);
    }
}
