use crate::{DeclusteringMethod, Result};
use decluster_grid::{BucketRegion, DiskId, GridSpace};

/// A declustering method materialized over a grid: one disk id per bucket.
///
/// Materialization makes the per-bucket lookup a single indexed load and —
/// more importantly for the study — lets the harness evaluate thousands of
/// queries against a fixed allocation without re-running the method.
/// `AllocationMap` is itself a [`DeclusteringMethod`], so anything that
/// accepts a method accepts a materialized one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocationMap {
    space: GridSpace,
    m: u32,
    name: &'static str,
    disks: Vec<u32>,
}

impl AllocationMap {
    /// Materializes `method` over `space`.
    ///
    /// # Errors
    /// Grid errors if the space cannot be enumerated in memory.
    ///
    /// # Panics
    /// Panics if the method returns a disk outside `0..num_disks()`
    /// (a broken `DeclusteringMethod` contract).
    pub fn from_method(space: &GridSpace, method: &dyn DeclusteringMethod) -> Result<Self> {
        let m = method.num_disks();
        let total = usize::try_from(space.num_buckets()).map_err(|_| {
            crate::MethodError::UnsupportedGrid {
                method: "AllocationMap",
                reason: "grid too large to materialize".into(),
            }
        })?;
        let mut disks = Vec::with_capacity(total);
        for bucket in space.iter() {
            let d = method.disk_of(bucket.as_slice());
            assert!(
                d.0 < m,
                "{} returned {d} with only {m} disks",
                method.name()
            );
            disks.push(d.0);
        }
        Ok(AllocationMap {
            space: space.clone(),
            m,
            name: method.name(),
            disks,
        })
    }

    /// Builds an allocation directly from a per-bucket disk table in
    /// row-major order (used by the theory crate's search).
    ///
    /// # Errors
    /// [`crate::MethodError::UnsupportedGrid`] if the table length does not
    /// match the grid or contains out-of-range disks.
    pub fn from_table(space: &GridSpace, m: u32, disks: Vec<u32>) -> Result<Self> {
        if disks.len() as u64 != space.num_buckets() || disks.iter().any(|&d| d >= m) {
            return Err(crate::MethodError::UnsupportedGrid {
                method: "AllocationMap",
                reason: "table shape or disk range mismatch".into(),
            });
        }
        Ok(AllocationMap {
            space: space.clone(),
            m,
            name: "TABLE",
            disks,
        })
    }

    /// The grid this allocation covers.
    pub fn space(&self) -> &GridSpace {
        &self.space
    }

    /// The raw per-bucket disk table (row-major).
    pub fn table(&self) -> &[u32] {
        &self.disks
    }

    /// Returns the same allocation carrying a different display name
    /// (used when deserializing a map whose method we recognize).
    pub(crate) fn renamed(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Response time of a query region in bucket retrievals: the maximum,
    /// over disks, of the number of the region's buckets on that disk.
    ///
    /// This is the paper's cost metric — with all disks working in
    /// parallel, the slowest disk determines the finish time.
    pub fn response_time(&self, region: &BucketRegion) -> u64 {
        let mut per_disk = vec![0u64; self.m as usize];
        for bucket in region.iter() {
            let id = self.space.linearize_unchecked(bucket.as_slice());
            per_disk[self.disks[id as usize] as usize] += 1;
        }
        per_disk.into_iter().max().unwrap_or(0)
    }

    /// As [`AllocationMap::response_time`], accumulating into `scratch`'s
    /// reusable buffer instead of allocating per query — the naive-walk
    /// counterpart of [`crate::DiskCounts::response_time_with`], used as
    /// the fallback path when the kernel table is too large to build.
    pub fn response_time_with(&self, region: &BucketRegion, scratch: &mut crate::Scratch) -> u64 {
        let per_disk = scratch.lanes_mut(self.m as usize);
        for bucket in region.iter() {
            let id = self.space.linearize_unchecked(bucket.as_slice());
            per_disk[self.disks[id as usize] as usize] += 1;
        }
        per_disk.iter().map(|&c| c.max(0) as u64).max().unwrap_or(0)
    }

    /// Per-disk bucket counts for a query region (the I/O histogram behind
    /// [`AllocationMap::response_time`]).
    pub fn access_histogram(&self, region: &BucketRegion) -> Vec<u64> {
        let mut per_disk = vec![0u64; self.m as usize];
        for bucket in region.iter() {
            let id = self.space.linearize_unchecked(bucket.as_slice());
            per_disk[self.disks[id as usize] as usize] += 1;
        }
        per_disk
    }

    /// As [`AllocationMap::access_histogram`], written into a caller-owned
    /// buffer (cleared first) so sweep loops allocate nothing per query.
    pub fn access_histogram_into(&self, region: &BucketRegion, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.m as usize, 0);
        for bucket in region.iter() {
            let id = self.space.linearize_unchecked(bucket.as_slice());
            out[self.disks[id as usize] as usize] += 1;
        }
    }

    /// Static load statistics over the whole grid.
    pub fn load_stats(&self) -> LoadStats {
        let mut counts = vec![0u64; self.m as usize];
        for &d in &self.disks {
            counts[d as usize] += 1;
        }
        LoadStats::from_counts(counts)
    }

    /// Fraction of buckets on which two allocations agree (diagnostic for
    /// comparing methods).
    pub fn agreement(&self, other: &AllocationMap) -> f64 {
        assert_eq!(self.disks.len(), other.disks.len(), "grids differ");
        if self.disks.is_empty() {
            return 1.0;
        }
        let same = self
            .disks
            .iter()
            .zip(&other.disks)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.disks.len() as f64
    }
}

impl DeclusteringMethod for AllocationMap {
    fn name(&self) -> &'static str {
        self.name
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        let id = self.space.linearize_unchecked(bucket);
        DiskId(self.disks[id as usize])
    }
}

/// Summary of how many buckets each disk holds.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadStats {
    /// Buckets per disk.
    pub counts: Vec<u64>,
    /// Lightest disk.
    pub min: u64,
    /// Heaviest disk.
    pub max: u64,
    /// Mean buckets per disk.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl LoadStats {
    fn from_counts(counts: Vec<u64>) -> Self {
        let n = counts.len().max(1) as f64;
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = counts.iter().sum::<u64>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        LoadStats {
            counts,
            min,
            max,
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Max-over-min imbalance; 1.0 is perfect (guards `min == 0` with
    /// `f64::INFINITY`).
    pub fn imbalance(&self) -> f64 {
        if self.min == 0 {
            if self.max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.max as f64 / self.min as f64
        }
    }
}

/// Convenience: materialize a method and return its response time for one
/// region. Prefer building an [`AllocationMap`] once when evaluating many
/// queries.
pub fn one_shot_response_time(method: &dyn DeclusteringMethod, region: &BucketRegion) -> u64 {
    let mut per_disk = vec![0u64; method.num_disks() as usize];
    for bucket in region.iter() {
        per_disk[method.disk_of(bucket.as_slice()).index()] += 1;
    }
    per_disk.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModulo, RoundRobin};
    use decluster_grid::RangeQuery;

    fn grid8() -> GridSpace {
        GridSpace::new_2d(8, 8).unwrap()
    }

    #[test]
    fn materialization_matches_method() {
        let g = grid8();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let map = AllocationMap::from_method(&g, &dm).unwrap();
        for b in g.iter() {
            assert_eq!(map.disk_of(b.as_slice()), dm.disk_of(b.as_slice()));
        }
        assert_eq!(map.name(), "DM");
        assert_eq!(map.num_disks(), 4);
    }

    #[test]
    fn response_time_is_max_per_disk() {
        let g = grid8();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let map = AllocationMap::from_method(&g, &dm).unwrap();
        // A 1x4 row query under DM touches disks (r+c) mod 4 for c=0..4:
        // all four disks once -> RT 1.
        let row = RangeQuery::new([0, 0], [0, 3]).unwrap().region(&g).unwrap();
        assert_eq!(map.response_time(&row), 1);
        // An anti-diagonal-aligned square 2x2 starting at <0,0>: sums
        // 0,1,1,2 -> disk1 twice -> RT 2.
        let sq = RangeQuery::new([0, 0], [1, 1]).unwrap().region(&g).unwrap();
        assert_eq!(map.response_time(&sq), 2);
        let hist = map.access_histogram(&sq);
        assert_eq!(hist.iter().sum::<u64>(), 4);
        assert_eq!(hist[1], 2);
    }

    #[test]
    fn one_shot_matches_materialized() {
        let g = grid8();
        let dm = DiskModulo::new(&g, 3).unwrap();
        let map = AllocationMap::from_method(&g, &dm).unwrap();
        let r = RangeQuery::new([1, 2], [5, 6]).unwrap().region(&g).unwrap();
        assert_eq!(one_shot_response_time(&dm, &r), map.response_time(&r));
    }

    #[test]
    fn from_table_validates() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        assert!(AllocationMap::from_table(&g, 2, vec![0, 1, 1, 0]).is_ok());
        assert!(AllocationMap::from_table(&g, 2, vec![0, 1, 2, 0]).is_err());
        assert!(AllocationMap::from_table(&g, 2, vec![0, 1]).is_err());
    }

    #[test]
    fn load_stats_balanced_round_robin() {
        let g = grid8();
        let rr = RoundRobin::new(&g, 4).unwrap();
        let map = AllocationMap::from_method(&g, &rr).unwrap();
        let stats = map.load_stats();
        assert_eq!(stats.counts, vec![16, 16, 16, 16]);
        assert_eq!(stats.min, 16);
        assert_eq!(stats.max, 16);
        assert!((stats.mean - 16.0).abs() < 1e-12);
        assert_eq!(stats.stddev, 0.0);
        assert_eq!(stats.imbalance(), 1.0);
    }

    #[test]
    fn load_stats_skewed() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        let map = AllocationMap::from_table(&g, 2, vec![0, 0, 0, 1]).unwrap();
        let stats = map.load_stats();
        assert_eq!(stats.counts, vec![3, 1]);
        assert_eq!(stats.imbalance(), 3.0);
        assert!(stats.stddev > 0.0);
    }

    #[test]
    fn imbalance_with_empty_disk_is_infinite() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        let map = AllocationMap::from_table(&g, 3, vec![0, 0, 1, 1]).unwrap();
        assert!(map.load_stats().imbalance().is_infinite());
    }

    #[test]
    fn agreement_reflexive_and_partial() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        let a = AllocationMap::from_table(&g, 2, vec![0, 1, 0, 1]).unwrap();
        let b = AllocationMap::from_table(&g, 2, vec![0, 1, 1, 0]).unwrap();
        assert_eq!(a.agreement(&a), 1.0);
        assert_eq!(a.agreement(&b), 0.5);
    }

    #[test]
    fn scratch_variants_match_allocating_paths() {
        let g = grid8();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let map = AllocationMap::from_method(&g, &dm).unwrap();
        let mut scratch = crate::Scratch::new();
        let mut hist = vec![99u64; 1]; // wrong size on purpose: must be resized
        for (lo, hi) in [([0, 0], [0, 3]), ([1, 2], [5, 6]), ([0, 0], [7, 7])] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            assert_eq!(
                map.response_time_with(&r, &mut scratch),
                map.response_time(&r)
            );
            map.access_histogram_into(&r, &mut hist);
            assert_eq!(hist, map.access_histogram(&r));
        }
    }

    #[test]
    fn full_grid_response_time_equals_max_load() {
        let g = grid8();
        let dm = DiskModulo::new(&g, 5).unwrap();
        let map = AllocationMap::from_method(&g, &dm).unwrap();
        let full = BucketRegion::full(&g);
        assert_eq!(map.response_time(&full), map.load_stats().max);
    }
}
