use crate::{AllocationMap, DeclusteringMethod, DiskCounts, MethodError, Result};
use decluster_grid::{BucketRegion, DiskId};

/// Chained-declustering replication (Hsiao & DeWitt) layered over any
/// grid declustering method.
///
/// The paper explicitly scopes replication out ("we do not consider
/// techniques where a data subspace can be assigned to more than one
/// disk"); this extension shows what its inclusion buys. Every bucket
/// keeps its *primary* copy on `base.disk_of(bucket)` and a *backup* on
/// the next disk modulo `M`, the chain pattern that keeps any single
/// failure survivable while adding only one extra copy.
///
/// Reads prefer the primary; when a disk fails, its buckets fall back to
/// their backups. [`ChainedDecluster::response_time`] reports the
/// resulting max-per-disk cost, so the normal/degraded comparison uses
/// the paper's own metric.
///
/// The scheme generalizes to **r-way** chains
/// ([`ChainedDecluster::with_replicas`]): each bucket keeps `r` backup
/// copies on the `r` chain successors of its primary, surviving any `r`
/// simultaneous failures at a storage overhead of `1 + r`. `r = 1` is
/// the classic Hsiao & DeWitt layout and the default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainedDecluster {
    base: AllocationMap,
    replicas: u32,
}

impl ChainedDecluster {
    /// Wraps a materialized allocation in chained replication with one
    /// backup copy per bucket (`r = 1`).
    ///
    /// # Errors
    /// [`MethodError::UnsupportedGrid`] when there are fewer than 2 disks
    /// (a chain needs a distinct neighbour).
    pub fn new(base: AllocationMap) -> Result<Self> {
        Self::with_replicas(base, 1)
    }

    /// Wraps a materialized allocation in r-way chained replication:
    /// bucket copies live on the primary and its `replicas` chain
    /// successors modulo `M`.
    ///
    /// # Errors
    /// [`MethodError::UnsupportedGrid`] unless `1 <= replicas <= M - 1`
    /// (0 extra copies is no replication; `M` copies or more would wrap
    /// the chain onto the primary).
    pub fn with_replicas(base: AllocationMap, replicas: u32) -> Result<Self> {
        let m = base.num_disks();
        if m < 2 {
            return Err(MethodError::UnsupportedGrid {
                method: "chained declustering",
                reason: "replication needs at least 2 disks".into(),
            });
        }
        if replicas == 0 || replicas >= m {
            return Err(MethodError::UnsupportedGrid {
                method: "chained declustering",
                reason: format!("replica count {replicas} outside 1..={} (M = {m})", m - 1),
            });
        }
        Ok(ChainedDecluster { base, replicas })
    }

    /// The underlying (primary) allocation.
    pub fn base(&self) -> &AllocationMap {
        &self.base
    }

    /// Number of disks.
    pub fn num_disks(&self) -> u32 {
        self.base.num_disks()
    }

    /// Primary disk of a bucket.
    pub fn primary_of(&self, bucket: &[u32]) -> DiskId {
        self.base.disk_of(bucket)
    }

    /// Number of backup copies per bucket (`r`).
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Backup disk of a bucket: the next disk along the chain (the first
    /// of its `r` backups).
    pub fn backup_of(&self, bucket: &[u32]) -> DiskId {
        self.copy_of(bucket, 1)
    }

    /// Disk holding copy `j` of a bucket (`j = 0` is the primary,
    /// `1..=r` the chain backups): `(primary + j) mod M`.
    ///
    /// # Panics
    /// When `j > r` — the bucket has no such copy.
    pub fn copy_of(&self, bucket: &[u32], j: u32) -> DiskId {
        assert!(
            j <= self.replicas,
            "copy index {j} > replica count {}",
            self.replicas
        );
        DiskId((self.base.disk_of(bucket).0 + j) % self.num_disks())
    }

    /// Response time of a query in bucket retrievals, optionally with one
    /// failed disk: every bucket reads from its primary unless the
    /// primary failed, in which case the backup serves it. Returns `None`
    /// if `failed` is out of range.
    ///
    /// With `failed = None` this equals the base allocation's response
    /// time; replication is free until something breaks.
    pub fn response_time(&self, region: &BucketRegion, failed: Option<DiskId>) -> Option<u64> {
        let m = self.num_disks();
        if let Some(f) = failed {
            if f.0 >= m {
                return None;
            }
        }
        let mut per_disk = vec![0u64; m as usize];
        for bucket in region.iter() {
            let primary = self.primary_of(bucket.as_slice());
            let serving = match failed {
                Some(f) if primary == f => self.backup_of(bucket.as_slice()),
                _ => primary,
            };
            debug_assert!(
                Some(serving) != failed,
                "backup of a failed primary is distinct"
            );
            per_disk[serving.index()] += 1;
        }
        Some(per_disk.into_iter().max().unwrap_or(0))
    }

    /// Response time with an arbitrary set of failed disks (`failed[d]`
    /// true means disk `d` is down): every bucket reads from the first
    /// live copy along its chain (primary, then the `r` successors in
    /// order), and is *unavailable* when all `1 + r` copies are down.
    ///
    /// Returns `None` when the mask length does not match the disk count
    /// or when some bucket of the region has no live copy — the query
    /// cannot be answered, which callers surface as an unavailability
    /// outcome rather than a panic.
    pub fn response_time_masked(&self, region: &BucketRegion, failed: &[bool]) -> Option<u64> {
        let m = self.num_disks() as usize;
        if failed.len() != m {
            return None;
        }
        let mut per_disk = vec![0u64; m];
        for bucket in region.iter() {
            let primary = self.primary_of(bucket.as_slice());
            let serving = (0..=self.replicas)
                .map(|j| DiskId((primary.0 + j) % self.num_disks()))
                .find(|c| !failed[c.index()])?; // every copy down: data lost
            per_disk[serving.index()] += 1;
        }
        Some(per_disk.into_iter().max().unwrap_or(0))
    }

    /// Kernel-accelerated degraded response time: the same answer as
    /// [`ChainedDecluster::response_time_masked`], computed from a
    /// [`DiskCounts`] kernel built over the *base* allocation in
    /// `O(M · 2^k)` — independent of the query's area. The chain rule
    /// makes this possible: every bucket's backups are pure functions of
    /// its primary, so the degraded per-disk loads follow from the
    /// primary histogram alone (a failed disk's whole share moves to its
    /// first live chain successor).
    ///
    /// Returns `None` for a mismatched mask or when a failed disk with
    /// buckets in the region has all `r` successors down too (no live
    /// copy).
    pub fn degraded_response_time(
        &self,
        kernel: &DiskCounts,
        region: &BucketRegion,
        failed: &[bool],
    ) -> Option<u64> {
        let m = self.num_disks() as usize;
        if failed.len() != m || kernel.num_disks() != self.num_disks() {
            return None;
        }
        let hist = kernel.access_histogram(region);
        let mut loads = vec![0u64; m];
        for (d, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !failed[d] {
                loads[d] += count;
            } else {
                let serving = (1..=self.replicas as usize)
                    .map(|j| (d + j) % m)
                    .find(|&c| !failed[c])?;
                loads[serving] += count;
            }
        }
        Some(loads.into_iter().max().unwrap_or(0))
    }

    /// The worst degraded response time over all single-disk failures.
    pub fn worst_degraded_response_time(&self, region: &BucketRegion) -> u64 {
        (0..self.num_disks())
            .filter_map(|f| self.response_time(region, Some(DiskId(f))))
            .max()
            .unwrap_or(0)
    }

    /// Storage overhead factor of the scheme: `1 + r` copies per bucket
    /// (exactly 2.0 for the classic one-backup chain). Kept as a method
    /// so reports don't hardcode the constant.
    pub fn storage_overhead(&self) -> f64 {
        (1 + self.replicas) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModulo, Hcam};
    use decluster_grid::{GridSpace, RangeQuery};

    fn chained(m: u32) -> (GridSpace, ChainedDecluster) {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&space, m).unwrap();
        let base = AllocationMap::from_method(&space, &dm).unwrap();
        (space.clone(), ChainedDecluster::new(base).unwrap())
    }

    fn chained_r(m: u32, r: u32) -> (GridSpace, ChainedDecluster) {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&space, m).unwrap();
        let base = AllocationMap::from_method(&space, &dm).unwrap();
        (
            space.clone(),
            ChainedDecluster::with_replicas(base, r).unwrap(),
        )
    }

    fn region(space: &GridSpace, lo: [u32; 2], hi: [u32; 2]) -> BucketRegion {
        RangeQuery::new(lo, hi).unwrap().region(space).unwrap()
    }

    #[test]
    fn needs_two_disks() {
        let space = GridSpace::new_2d(4, 4).unwrap();
        let dm = DiskModulo::new(&space, 1).unwrap();
        let base = AllocationMap::from_method(&space, &dm).unwrap();
        assert!(matches!(
            ChainedDecluster::new(base).unwrap_err(),
            MethodError::UnsupportedGrid { .. }
        ));
    }

    #[test]
    fn healthy_reads_match_the_base_allocation() {
        let (space, chain) = chained(8);
        let r = region(&space, [2, 3], [9, 10]);
        assert_eq!(
            chain.response_time(&r, None).unwrap(),
            chain.base().response_time(&r)
        );
    }

    #[test]
    fn no_query_is_lost_under_any_single_failure() {
        let (space, chain) = chained(8);
        let r = region(&space, [0, 0], [7, 7]);
        let total = r.num_buckets();
        for f in 0..8u32 {
            // Every bucket is still served by a surviving disk: the sum of
            // per-disk loads equals |Q| and the failed disk serves none.
            let rt = chain.response_time(&r, Some(DiskId(f))).unwrap();
            assert!(rt >= total.div_ceil(7), "failure {f}");
            assert!(rt <= total, "failure {f}");
        }
    }

    #[test]
    fn degraded_rt_is_bounded_by_double_the_healthy_rt() {
        // The failed disk's load lands entirely on its chain neighbour:
        // the neighbour serves at most its own plus the failed disk's
        // buckets.
        let (space, chain) = chained(8);
        for (lo, hi) in [
            ([0u32, 0u32], [3u32, 3u32]),
            ([1, 2], [12, 13]),
            ([0, 0], [15, 15]),
        ] {
            let r = region(&space, lo, hi);
            let healthy = chain.response_time(&r, None).unwrap();
            let degraded = chain.worst_degraded_response_time(&r);
            assert!(degraded >= healthy);
            assert!(
                degraded <= 2 * healthy,
                "degraded {degraded} > 2x healthy {healthy}"
            );
        }
    }

    #[test]
    fn backup_is_always_the_chain_neighbour() {
        let (space, chain) = chained(5);
        for b in space.iter() {
            let p = chain.primary_of(b.as_slice()).0;
            let s = chain.backup_of(b.as_slice()).0;
            assert_eq!(s, (p + 1) % 5);
        }
        assert_eq!(chain.storage_overhead(), 2.0);
    }

    #[test]
    fn invalid_failed_disk_is_rejected() {
        let (space, chain) = chained(4);
        let r = region(&space, [0, 0], [1, 1]);
        assert!(chain.response_time(&r, Some(DiskId(4))).is_none());
        assert!(chain.response_time(&r, Some(DiskId(3))).is_some());
    }

    #[test]
    fn masked_single_failure_matches_the_option_api() {
        let (space, chain) = chained(6);
        for (lo, hi) in [([0u32, 0u32], [4u32, 4u32]), ([3, 1], [11, 9])] {
            let r = region(&space, lo, hi);
            for f in 0..6usize {
                let mut failed = [false; 6];
                failed[f] = true;
                assert_eq!(
                    chain.response_time_masked(&r, &failed),
                    chain.response_time(&r, Some(DiskId(f as u32))),
                    "failure {f}"
                );
            }
            // No failures: the healthy response time.
            assert_eq!(
                chain.response_time_masked(&r, &[false; 6]),
                chain.response_time(&r, None)
            );
        }
    }

    #[test]
    fn masked_adjacent_double_failure_loses_data() {
        // Disks f and f+1 both down: any bucket whose primary is f has
        // its only backup on f+1 — unavailable.
        let (space, chain) = chained(4);
        let r = region(&space, [0, 0], [3, 3]); // 16 buckets touch all 4 disks
        assert!(chain
            .response_time_masked(&r, &[true, true, false, false])
            .is_none());
        // Non-adjacent double failure of DM on this region is also fatal
        // only via adjacency; disks 0 and 2 are not chained, so buckets
        // of 0 go to 1 and buckets of 2 go to 3.
        let rt = chain
            .response_time_masked(&r, &[true, false, true, false])
            .unwrap();
        assert!(rt >= chain.response_time(&r, None).unwrap());
    }

    #[test]
    fn masked_rejects_wrong_length() {
        let (space, chain) = chained(4);
        let r = region(&space, [0, 0], [1, 1]);
        assert!(chain.response_time_masked(&r, &[false; 3]).is_none());
        assert!(chain.response_time_masked(&r, &[false; 5]).is_none());
    }

    #[test]
    fn kernel_degraded_matches_naive_masked() {
        let (space, chain) = chained(5);
        let kernel = chain.base().disk_counts().unwrap();
        for (lo, hi) in [
            ([0u32, 0u32], [3u32, 3u32]),
            ([2, 5], [9, 14]),
            ([0, 0], [15, 15]),
            ([7, 7], [7, 7]),
        ] {
            let r = region(&space, lo, hi);
            // Every single and double failure pattern over 5 disks.
            for bits in 0u32..(1 << 5) {
                if bits.count_ones() > 2 {
                    continue;
                }
                let failed: Vec<bool> = (0..5).map(|d| bits & (1 << d) != 0).collect();
                assert_eq!(
                    chain.degraded_response_time(&kernel, &r, &failed),
                    chain.response_time_masked(&r, &failed),
                    "mask {bits:05b} on {lo:?}..{hi:?}"
                );
            }
        }
    }

    #[test]
    fn kernel_degraded_rejects_mismatched_kernel() {
        let (space, chain) = chained(5);
        let other = DiskModulo::new(&space, 4).unwrap();
        let other_map = AllocationMap::from_method(&space, &other).unwrap();
        let wrong_kernel = other_map.disk_counts().unwrap();
        let r = region(&space, [0, 0], [2, 2]);
        assert!(chain
            .degraded_response_time(&wrong_kernel, &r, &[false; 5])
            .is_none());
    }

    #[test]
    fn replica_count_is_validated() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 5).unwrap();
        let base = AllocationMap::from_method(&space, &dm).unwrap();
        for bad in [0u32, 5, 6] {
            let err = ChainedDecluster::with_replicas(base.clone(), bad).unwrap_err();
            assert!(
                matches!(err, MethodError::UnsupportedGrid { .. }),
                "r = {bad}: {err}"
            );
            assert!(!err.to_string().contains('\n'), "one-line error: {err}");
        }
        for ok in 1u32..=4 {
            let chain = ChainedDecluster::with_replicas(base.clone(), ok).unwrap();
            assert_eq!(chain.replicas(), ok);
            assert_eq!(chain.storage_overhead(), (1 + ok) as f64);
        }
    }

    #[test]
    fn default_constructor_is_the_one_backup_chain() {
        let (_, via_new) = chained(6);
        let (_, via_r) = chained_r(6, 1);
        assert_eq!(via_new, via_r);
        assert_eq!(via_new.replicas(), 1);
    }

    #[test]
    fn copies_walk_the_chain() {
        let (space, chain) = chained_r(5, 3);
        for b in space.iter() {
            let p = chain.primary_of(b.as_slice()).0;
            for j in 0..=3u32 {
                assert_eq!(chain.copy_of(b.as_slice(), j).0, (p + j) % 5);
            }
        }
        assert_eq!(chain.storage_overhead(), 4.0);
    }

    #[test]
    fn any_r_simultaneous_failures_keep_every_query_answerable() {
        for r in 1u32..=4 {
            let (space, chain) = chained_r(5, r);
            let q = region(&space, [0, 0], [9, 9]);
            for bits in 0u32..(1 << 5) {
                let failed: Vec<bool> = (0..5).map(|d| bits & (1 << d) != 0).collect();
                let kernel = chain.base().disk_counts().unwrap();
                let masked = chain.response_time_masked(&q, &failed);
                assert_eq!(
                    masked,
                    chain.degraded_response_time(&kernel, &q, &failed),
                    "r = {r}, mask {bits:05b}"
                );
                if bits.count_ones() <= r {
                    assert!(masked.is_some(), "r = {r} must survive mask {bits:05b}");
                }
            }
        }
    }

    #[test]
    fn extra_replicas_never_raise_the_degraded_cost() {
        // A deeper chain gives the failover more choices, so for a single
        // failure the (first-live-copy) degraded RT is unchanged, and for
        // multi-failures it only helps availability.
        let (space, r1) = chained_r(8, 1);
        let (_, r3) = chained_r(8, 3);
        let q = region(&space, [1, 2], [10, 11]);
        for f in 0..8u32 {
            assert_eq!(
                r1.response_time(&q, Some(DiskId(f))),
                r3.response_time(&q, Some(DiskId(f)))
            );
        }
    }

    #[test]
    fn replication_beats_no_replication_on_availability() {
        // Without replication a failure makes some queries unanswerable;
        // with chaining every query still completes — at a bounded cost.
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 8).unwrap();
        let base = AllocationMap::from_method(&space, &hcam).unwrap();
        let chain = ChainedDecluster::new(base.clone()).unwrap();
        let r = region(&space, [4, 4], [7, 7]);
        // The un-replicated allocation touches the failed disk for some
        // failure choice (a 16-bucket query over 8 disks must).
        let touched: Vec<u64> = base.access_histogram(&r);
        assert!(touched.iter().any(|&n| n > 0));
        // Chained: still answerable for every failure.
        for f in 0..8u32 {
            assert!(chain.response_time(&r, Some(DiskId(f))).is_some());
        }
    }
}
