use crate::{DeclusteringMethod, MethodError, Result};
use decluster_grid::{DiskId, GridSpace};

/// Generalized Disk Modulo (GDM), Du (BIT 1986).
///
/// Bucket `<i₁, …, i_k>` goes to disk `(Σ cⱼ · iⱼ) mod M` for a fixed
/// integer coefficient vector `c`. DM is the special case `c = (1, …, 1)`;
/// skewed coefficient choices trade partial-match optimality on some
/// attributes for better range-query spread.
///
/// The Binary Disk Modulo (BDM) variant for binary/power-of-two Cartesian
/// product files corresponds to radix coefficients — see
/// [`GeneralizedDiskModulo::bdm`].
#[derive(Clone, Debug)]
pub struct GeneralizedDiskModulo {
    m: u32,
    coefficients: Vec<u64>,
    name: &'static str,
}

impl GeneralizedDiskModulo {
    /// Creates a GDM instance with explicit coefficients (one per grid
    /// dimension).
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`;
    /// [`MethodError::CoefficientMismatch`] when the coefficient count does
    /// not match the grid's dimensionality.
    pub fn new(space: &GridSpace, m: u32, coefficients: Vec<u64>) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        if coefficients.len() != space.k() {
            return Err(MethodError::CoefficientMismatch {
                expected: space.k(),
                got: coefficients.len(),
            });
        }
        Ok(GeneralizedDiskModulo {
            m,
            // Reduce eagerly so the hot path cannot overflow.
            coefficients: coefficients.into_iter().map(|c| c % u64::from(m)).collect(),
            name: "GDM",
        })
    }

    /// Binary Disk Modulo: GDM whose coefficients are the grid's row-major
    /// radix weights, i.e. the bucket's linearized number mod `M`.
    ///
    /// For the binary Cartesian product files Du studied (`d_i = 2`) the
    /// coefficients are `2^(k-1), …, 2, 1` — the bucket id read as a binary
    /// number.
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] when `m == 0`.
    pub fn bdm(space: &GridSpace, m: u32) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        let mut weights = vec![1u64; space.k()];
        for i in (0..space.k().saturating_sub(1)).rev() {
            // Reduce as we go: (a*b) mod m needs only reduced factors.
            weights[i] = (weights[i + 1] * u64::from(space.dim(i + 1))) % u64::from(m);
        }
        let mut gdm = GeneralizedDiskModulo::new(space, m, weights)?;
        gdm.name = "BDM";
        Ok(gdm)
    }

    /// The (reduced) coefficient vector.
    pub fn coefficients(&self) -> &[u64] {
        &self.coefficients
    }
}

impl DeclusteringMethod for GeneralizedDiskModulo {
    fn name(&self) -> &'static str {
        self.name
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        debug_assert_eq!(bucket.len(), self.coefficients.len());
        let m = u64::from(self.m);
        let mut acc: u64 = 0;
        for (&c, &x) in self.coefficients.iter().zip(bucket) {
            // c < m and (x mod m) < m, so the product fits in u64 for any
            // m ≤ 2^32 and the running sum stays < 2^65 — reduce each term.
            acc = (acc + c * (u64::from(x) % m)) % m;
        }
        DiskId(acc as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModulo;

    #[test]
    fn unit_coefficients_reduce_to_dm() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let gdm = GeneralizedDiskModulo::new(&g, 5, vec![1, 1]).unwrap();
        let dm = DiskModulo::new(&g, 5).unwrap();
        for b in g.iter() {
            assert_eq!(gdm.disk_of(b.as_slice()), dm.disk_of(b.as_slice()));
        }
    }

    #[test]
    fn coefficients_weight_dimensions() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let gdm = GeneralizedDiskModulo::new(&g, 7, vec![1, 2]).unwrap();
        assert_eq!(gdm.disk_of(&[0, 3]), DiskId(6));
        assert_eq!(gdm.disk_of(&[3, 0]), DiskId(3));
        assert_eq!(gdm.disk_of(&[5, 4]), DiskId((5 + 8) % 7));
    }

    #[test]
    fn validation() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        assert_eq!(
            GeneralizedDiskModulo::new(&g, 0, vec![1, 1]).unwrap_err(),
            MethodError::ZeroDisks
        );
        assert_eq!(
            GeneralizedDiskModulo::new(&g, 3, vec![1]).unwrap_err(),
            MethodError::CoefficientMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn large_coefficients_are_reduced() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        let gdm = GeneralizedDiskModulo::new(&g, 3, vec![u64::MAX, 4]).unwrap();
        assert!(gdm.coefficients().iter().all(|&c| c < 3));
        for b in g.iter() {
            assert!(gdm.disk_of(b.as_slice()).0 < 3);
        }
    }

    #[test]
    fn bdm_equals_linearization_mod_m() {
        let g = GridSpace::new(vec![2, 2, 2, 2]).unwrap();
        let bdm = GeneralizedDiskModulo::bdm(&g, 4).unwrap();
        assert_eq!(bdm.name(), "BDM");
        for b in g.iter() {
            let lin = g.linearize(&b).unwrap();
            assert_eq!(bdm.disk_of(b.as_slice()).0 as u64, lin % 4, "bucket {b}");
        }
    }

    #[test]
    fn bdm_on_mixed_radix_grid() {
        let g = GridSpace::new(vec![3, 4, 5]).unwrap();
        let bdm = GeneralizedDiskModulo::bdm(&g, 7).unwrap();
        for b in g.iter() {
            let lin = g.linearize(&b).unwrap();
            assert_eq!(bdm.disk_of(b.as_slice()).0 as u64, lin % 7);
        }
    }

    #[test]
    fn one_dimensional_gdm() {
        let g = GridSpace::new(vec![16]).unwrap();
        let gdm = GeneralizedDiskModulo::new(&g, 4, vec![3]).unwrap();
        assert_eq!(gdm.disk_of(&[5]), DiskId(15 % 4));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn disk_always_in_range(
            m in 1u32..64,
            c0 in any::<u64>(),
            c1 in any::<u64>(),
            x in 0u32..1000,
            y in 0u32..1000,
        ) {
            let g = GridSpace::new_2d(1000, 1000).unwrap();
            let gdm = GeneralizedDiskModulo::new(&g, m, vec![c0, c1]).unwrap();
            prop_assert!(gdm.disk_of(&[x, y]).0 < m);
        }

        #[test]
        fn assignment_is_linear_in_each_coordinate(
            m in 2u32..32, c0 in 0u64..32, c1 in 0u64..32, x in 0u32..100, y in 0u32..100
        ) {
            let g = GridSpace::new_2d(200, 200).unwrap();
            let gdm = GeneralizedDiskModulo::new(&g, m, vec![c0, c1]).unwrap();
            // Moving one step on dimension 0 shifts the disk by c0 mod m.
            let a = gdm.disk_of(&[x, y]).0;
            let b = gdm.disk_of(&[x + 1, y]).0;
            prop_assert_eq!(u64::from(b), (u64::from(a) + c0 % u64::from(m)) % u64::from(m));
        }
    }
}
