use crate::{AllocationMap, DeclusteringMethod, MethodError, MethodRegistry, Result};
use decluster_grid::{BucketRegion, GridSpace};

/// The advisor's verdict: the winning method and the per-method average
/// response times it was based on.
#[derive(Debug)]
pub struct Advice {
    /// Name of the recommended method.
    pub winner: &'static str,
    /// `(method name, average response time over the sample)` for every
    /// candidate, sorted best-first.
    pub ranking: Vec<(&'static str, f64)>,
    /// The winning method, materialized and ready to use.
    pub allocation: AllocationMap,
}

/// Picks the best declustering method for a sampled workload.
///
/// The paper's conclusion operationalized: *"information about common
/// queries on a relation ought to be used in deciding the declustering for
/// it"*. Every candidate the registry can build for `(space, m)` is
/// materialized and scored by its mean response time over `sample`; the
/// lowest mean wins (ties break toward the earlier candidate, i.e. the
/// paper's listing order DM, FX, ECC, HCAM).
///
/// # Errors
/// [`MethodError::EmptyWorkload`] for an empty sample, and
/// [`MethodError::UnsupportedGrid`] if no candidate applies at all.
pub fn advise(space: &GridSpace, m: u32, sample: &[BucketRegion]) -> Result<Advice> {
    if sample.is_empty() {
        return Err(MethodError::EmptyWorkload);
    }
    let registry = MethodRegistry::default();
    let mut scored: Vec<(&'static str, f64, AllocationMap)> = Vec::new();
    for method in registry.paper_methods(space, m) {
        let map = AllocationMap::from_method(space, method.as_ref())?;
        let total: u64 = sample.iter().map(|r| map.response_time(r)).sum();
        let mean = total as f64 / sample.len() as f64;
        scored.push((map.name(), mean, map));
    }
    if scored.is_empty() {
        return Err(MethodError::UnsupportedGrid {
            method: "advisor",
            reason: format!("no declustering method applies to this grid with M = {m}"),
        });
    }
    // Stable sort keeps listing order on ties.
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("means are finite"));
    let ranking = scored.iter().map(|(n, s, _)| (*n, *s)).collect();
    let (winner, _, allocation) = scored.swap_remove(0);
    Ok(Advice {
        winner,
        ranking,
        allocation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::{PartialMatchQuery, RangeQuery};

    fn regions_of_rows(space: &GridSpace) -> Vec<BucketRegion> {
        // Partial-match-style row queries: DM is provably optimal here.
        (0..space.dim(0))
            .map(|r| {
                PartialMatchQuery::new(vec![Some(r), None])
                    .unwrap()
                    .region(space)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn advisor_picks_dm_for_row_partial_match_workload() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let advice = advise(&space, 16, &regions_of_rows(&space)).unwrap();
        // DM achieves the optimum RT = 1 on every row query; it must win
        // (possibly tied, in which case listing order keeps it first).
        assert_eq!(advice.winner, "DM");
        let dm_score = advice.ranking.iter().find(|(n, _)| *n == "DM").unwrap().1;
        assert_eq!(dm_score, 1.0);
    }

    #[test]
    fn advisor_prefers_spatial_methods_for_small_squares() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        // 2x2 squares tiled over the grid: DM wastes parallelism on the
        // anti-diagonal, HCAM/ECC/FX do better on average.
        let mut sample = Vec::new();
        for r in (0..15).step_by(3) {
            for c in (0..15).step_by(3) {
                sample.push(
                    RangeQuery::new([r, c], [r + 1, c + 1])
                        .unwrap()
                        .region(&space)
                        .unwrap(),
                );
            }
        }
        let advice = advise(&space, 16, &sample).unwrap();
        assert_ne!(advice.winner, "DM");
        let dm = advice.ranking.iter().find(|(n, _)| *n == "DM").unwrap().1;
        let win = advice.ranking[0].1;
        assert!(
            win < dm,
            "winner {} ({win}) should beat DM ({dm})",
            advice.winner
        );
    }

    #[test]
    fn advisor_rejects_empty_sample() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        assert!(matches!(
            advise(&space, 4, &[]).unwrap_err(),
            MethodError::EmptyWorkload
        ));
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let sample = regions_of_rows(&space);
        let advice = advise(&space, 4, &sample).unwrap();
        assert_eq!(advice.ranking.len(), 4); // DM, FX, ECC, HCAM all apply
        for w in advice.ranking.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(advice.ranking[0].0, advice.winner);
        // The returned allocation is the winner's.
        assert_eq!(advice.allocation.name(), advice.winner);
    }

    #[test]
    fn non_power_of_two_disks_still_advises() {
        let space = GridSpace::new_2d(9, 9).unwrap();
        let sample = regions_of_rows(&space);
        // ECC can't build here; the others compete.
        let advice = advise(&space, 3, &sample).unwrap();
        assert_eq!(advice.ranking.len(), 3);
    }
}
