use crate::{AllocationMap, DeclusteringMethod, MethodError, Result};
use decluster_grid::BucketRegion;
use smallvec::SmallVec;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of kernel table builds (every [`DiskCounts`]
/// construction that walks the grid, including a cache miss recompiling
/// a stale image). See [`kernel_build_count`].
static KERNEL_BUILDS: AtomicU64 = AtomicU64::new(0);

/// The number of kernel table builds this process has performed.
///
/// The warm-start contract is pinned against this counter: a process
/// that loads every kernel from a persisted [`crate::KernelCache`] must
/// reach its first scored query with a delta of zero. The counter is a
/// relaxed atomic — it orders nothing, it only counts.
pub fn kernel_build_count() -> u64 {
    KERNEL_BUILDS.load(Ordering::Relaxed)
}

/// Batched response-time kernel: one k-D inclusive prefix-sum table per
/// disk over a materialized allocation.
///
/// The table holds, for each cell and disk `d`, the number of buckets
/// with coordinates `≤` the cell's coordinates (component-wise) that
/// live on disk `d` — a per-disk summed-area table. Any rectangular
/// query's per-disk bucket counts then follow from `2^k`
/// inclusion–exclusion corner lookups, so [`DiskCounts::response_time`]
/// costs `O(M · 2^k)` regardless of the query's area, where the naive
/// walk in [`AllocationMap::response_time`] costs `O(|Q|)`. For the
/// paper's sweeps — thousands of placements of large rectangles over a
/// fixed allocation — this turns the dominant cost from the query area
/// into the (tiny) corner count.
///
/// Construction walks the grid once per dimension (`O(k · N · M)` time,
/// `O(N · M)` space for `N` buckets), so the kernel pays off when an
/// allocation is queried more than a handful of times.
///
/// # Kernel v2: count lanes, query plans, scratch buffers
///
/// Three refinements on top of the v1 corner walk, all bit-identical to
/// it (and to the naive walk — property-tested):
///
/// * **Adaptive count width.** Counts are capped by the bucket total, so
///   grids with at most `u16::MAX` buckets (every paper grid) store the
///   table as `u16` lanes — half the bytes, half the memory traffic of
///   the `u32` layout, which remains the fallback for larger grids.
/// * **Shape-compiled plans** ([`CornerPlan`]). The paper's sweeps score
///   thousands of *placements of the same query shape*. The `2^k` signed
///   corner row-offsets depend only on the shape (its per-dimension
///   extents), not the placement, so they are compiled once per shape;
///   each placement then costs one base-row computation plus an offset
///   add per corner, instead of re-deriving every corner from scratch.
/// * **Scratch buffers** ([`Scratch`]). The `*_with` entry points thread
///   a caller-owned accumulator (and the plan cache) through the scoring
///   loop, so repeated-query scoring allocates nothing per query.
#[derive(Clone, Debug)]
pub struct DiskCounts {
    /// Disks (`M`).
    m: u32,
    /// Partitions per dimension, cached from the grid.
    dims: Vec<u32>,
    /// Cell strides in *rows* (a row is `m` lanes wide).
    strides: Vec<usize>,
    /// Inclusive prefix sums, lane `table[cell * m + disk]`.
    table: CountLane,
}

/// The prefix-sum table at its adaptive lane width: `u16` when every
/// count fits (bucket total ≤ `u16::MAX`), `u32` otherwise. Both paths
/// run the same monomorphized build and scoring code and produce
/// identical counts; only the bytes moved differ.
///
/// Crate-visible so `persist` can serialize the table at its native
/// width (the v3 kernel image is lane-width-aware).
#[derive(Clone, Debug)]
pub(crate) enum CountLane {
    U16(Vec<u16>),
    U32(Vec<u32>),
}

impl CountLane {
    fn bytes(&self) -> usize {
        match self {
            CountLane::U16(t) => t.len() * std::mem::size_of::<u16>(),
            CountLane::U32(t) => t.len() * std::mem::size_of::<u32>(),
        }
    }
}

/// A count-lane integer: the private trait behind [`CountLane`]'s two
/// monomorphizations.
trait Lane: Copy + Default + std::ops::AddAssign<Self> {
    const ONE: Self;
    fn widen(self) -> i64;
    fn wrapping_add_lane(self, rhs: Self) -> Self;
    fn wrapping_sub_lane(self, rhs: Self) -> Self;
}

impl Lane for u16 {
    const ONE: Self = 1;
    #[inline(always)]
    fn widen(self) -> i64 {
        i64::from(self)
    }
    #[inline(always)]
    fn wrapping_add_lane(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
    #[inline(always)]
    fn wrapping_sub_lane(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
}

impl Lane for u32 {
    const ONE: Self = 1;
    #[inline(always)]
    fn widen(self) -> i64 {
        i64::from(self)
    }
    #[inline(always)]
    fn wrapping_add_lane(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
    #[inline(always)]
    fn wrapping_sub_lane(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
}

/// Indicator table + one blocked, division-free running-sum pass per
/// axis: turns per-cell disk indicators into inclusive prefix sums over
/// the box `[0, coord]`.
///
/// For axis `a`, cells sharing every coordinate before `a` form
/// contiguous blocks of `dims[a] · strides[a]` rows; within a block the
/// first `strides[a]` rows carry the axis's zero coordinate (nothing to
/// add), and every later lane adds the lane one row-stride back. The v1
/// pass re-derived the same structure per cell with a division and a
/// modulo; the nested loop form needs neither.
fn build_table<T: Lane>(
    map: &AllocationMap,
    lanes: usize,
    dims: &[u32],
    strides: &[usize],
) -> Vec<T> {
    let total = map.table().len();
    let mut table = vec![T::default(); total * lanes];
    for (cell, &disk) in map.table().iter().enumerate() {
        table[cell * lanes + disk as usize] = T::ONE;
    }
    for (axis, &d) in dims.iter().enumerate() {
        let stride = strides[axis] * lanes;
        let block = stride * d as usize;
        let mut base = 0;
        while base < table.len() {
            for i in base + stride..base + block {
                let prev = table[i - stride];
                table[i] += prev;
            }
            base += block;
        }
    }
    table
}

/// Sums `corners` (sign, table row) into `acc`, one `i64` per disk lane.
fn accumulate_rows<T: Lane>(table: &[T], lanes: usize, corners: &[(i64, usize)], acc: &mut [i64]) {
    for &(sign, row) in corners {
        let base = row * lanes;
        for (a, &v) in acc.iter_mut().zip(&table[base..base + lanes]) {
            *a += sign * v.widen();
        }
    }
}

/// The planned analogue of [`accumulate_rows`]: corner rows come from
/// the plan's precompiled offsets relative to `base` (the region's `lo`
/// row); corners whose low-face falls off the grid edge (`edge` mask)
/// contribute zero and are skipped.
///
/// Accumulation runs in *native lane width* with wrapping arithmetic:
/// every final per-disk count is a bucket count `≤` the grid total,
/// which fits the lane type by construction, and modular add/sub is
/// exact whenever the true result fits — intermediate partial sums may
/// "wrap negative" freely. This removes the per-lane widening to `i64`
/// and the sign multiply of the v1 path, and leaves an inner loop of
/// plain `u16`/`u32` adds the compiler can vectorize (`M` lanes per
/// corner in one or two SIMD registers on a paper-sized `M`).
fn accumulate_planned<T: Lane>(
    table: &[T],
    lanes: usize,
    plan: &CornerPlan,
    base: usize,
    edge: u32,
    acc: &mut Vec<T>,
) {
    acc.clear();
    acc.resize(lanes, T::default());
    for c in &plan.corners {
        if c.lo_mask & edge != 0 {
            continue;
        }
        let row = (base as i64 + c.offset) as usize * lanes;
        let src = &table[row..row + lanes];
        if c.sign > 0 {
            for (a, &v) in acc.iter_mut().zip(src) {
                *a = a.wrapping_add_lane(v);
            }
        } else {
            for (a, &v) in acc.iter_mut().zip(src) {
                *a = a.wrapping_sub_lane(v);
            }
        }
    }
}

/// [`accumulate_planned`] followed by the RT reduction: the max over
/// lanes, optionally restricted to `live` disks.
fn planned_max<T: Lane>(
    table: &[T],
    lanes: usize,
    plan: &CornerPlan,
    base: usize,
    edge: u32,
    acc: &mut Vec<T>,
    live: Option<&[bool]>,
) -> u64 {
    accumulate_planned(table, lanes, plan, base, edge, acc);
    let counts = acc.iter().map(|v| v.widen() as u64);
    match live {
        None => counts.max().unwrap_or(0),
        Some(mask) => counts
            .zip(mask)
            .filter(|(_, &l)| l)
            .map(|(c, _)| c)
            .max()
            .unwrap_or(0),
    }
}

/// One inclusion–exclusion corner of a compiled plan.
#[derive(Clone, Copy, Debug, Default)]
struct PlanCorner {
    /// Dimensions on which this corner takes the excluded low face
    /// (`lo - 1`); the corner is skipped when any of them sits on the
    /// grid edge (`lo == 0`), where the prefix sum below is zero.
    lo_mask: u32,
    /// Signed row offset from the region's `lo` row.
    offset: i64,
    /// Inclusion–exclusion sign (`+1` / `-1`).
    sign: i64,
}

/// A query *shape* compiled against a kernel's grid layout: the `2^k`
/// signed corner row-offsets of a rectangle with fixed per-dimension
/// extents, precomputed once so every *placement* of that shape costs
/// only a base-row add per corner.
///
/// A plan is tied to a grid layout (the strides), not to a method: every
/// kernel of an [`sim-level context`](DiskCounts) over the same grid
/// accepts the same plan, so one compilation serves all methods of a
/// sweep point. Compile with [`DiskCounts::compile_plan`]; the `*_with`
/// scoring entry points keep one cached in their [`Scratch`] and re-use
/// it while consecutive queries share a shape.
#[derive(Clone, Debug)]
pub struct CornerPlan {
    /// Per-dimension extents of the compiled shape.
    extents: SmallVec<[u32; 8]>,
    /// Row strides of the grid the plan was compiled against.
    strides: SmallVec<[usize; 8]>,
    /// All `2^k` corners.
    corners: SmallVec<[PlanCorner; 16]>,
}

impl CornerPlan {
    /// Whether this plan answers `region` on `kernel`: same grid layout
    /// and same per-dimension extents. Placement (the `lo` corner) is
    /// free — that is the point of the plan.
    pub fn matches(&self, kernel: &DiskCounts, region: &BucketRegion) -> bool {
        let k = self.extents.len();
        region.dims() == k
            && kernel.strides.as_slice() == self.strides.as_slice()
            && (0..k).all(|d| region.extent(d) == u64::from(self.extents[d]))
    }

    /// Corners the plan holds (`2^k`).
    pub fn num_corners(&self) -> usize {
        self.corners.len()
    }
}

/// Reusable scoring state for the `*_with` kernel entry points: the
/// per-disk accumulator (replacing a per-query allocation) plus a cached
/// [`CornerPlan`] with hit/compile counts.
///
/// Keep one per worker thread and thread it through the scoring loop;
/// a `Scratch` may be re-used freely across queries, methods, and even
/// grids — every entry point revalidates the cached plan against the
/// kernel it is called on and recompiles on mismatch.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Wide accumulator for the naive per-bucket walk
    /// ([`AllocationMap::response_time_with`]).
    acc: Vec<i64>,
    /// Native-width accumulators for the planned kernel path — one per
    /// lane width, so inclusion–exclusion runs without widening (see
    /// [`accumulate_planned`] for why wrapping arithmetic is exact).
    acc16: Vec<u16>,
    acc32: Vec<u32>,
    /// The most recently compiled plan, reused while shapes repeat.
    plan: Option<CornerPlan>,
    plan_hits: u64,
    plan_compiles: u64,
}

impl Scratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached plan (the next planned call recompiles).
    ///
    /// Callers that report plan statistics per batch (the sweep engine)
    /// reset at batch start so hit/compile counts depend only on the
    /// batch's query sequence, never on which worker ran the previous
    /// batch — that keeps the observability counters thread-count
    /// deterministic.
    pub fn reset_plan(&mut self) {
        self.plan = None;
    }

    /// Returns `(plan_hits, plan_compiles)` accumulated since the last
    /// drain and resets both to zero.
    pub fn drain_plan_stats(&mut self) -> (u64, u64) {
        let stats = (self.plan_hits, self.plan_compiles);
        self.plan_hits = 0;
        self.plan_compiles = 0;
        stats
    }

    /// The accumulator, cleared and sized to `lanes` (shared with the
    /// naive walk in [`AllocationMap::response_time_with`]).
    pub(crate) fn lanes_mut(&mut self, lanes: usize) -> &mut [i64] {
        self.acc.clear();
        self.acc.resize(lanes, 0);
        &mut self.acc
    }
}

/// One slot of a [`PlanCache`]: a compiled plan plus its last-touched
/// tick for LRU eviction.
#[derive(Clone, Debug)]
struct PlanSlot {
    plan: CornerPlan,
    last_used: u64,
}

/// A bounded, deterministic cross-query cache of [`CornerPlan`]s, keyed
/// by query shape (per-dimension extents) + grid strides.
///
/// [`Scratch`] caches exactly one plan — enough for sweeps that score
/// placements of one shape back to back, but a serving loop interleaves
/// arrivals of *different* shapes, recompiling on every alternation.
/// The serving loops hold one `PlanCache` per loop-scratch instead, so
/// a working set of up to `capacity` live shapes compiles each shape
/// once per run.
///
/// Determinism: lookups scan slots in insertion order, eviction removes
/// the least-recently-used slot (ticks are unique, so there are no
/// ties), and the loops [`clear`](PlanCache::clear) the cache at run
/// start — hit/miss counts are a pure function of the run's query
/// sequence, never of which worker previously used the buffers. That
/// makes the `kernel.shape_cache_*` observability counters
/// thread-count-deterministic, like the `Scratch` plan counters.
///
/// Allocation: slots live in a `Vec` that `clear` keeps at capacity,
/// and a compiled plan's `SmallVec`s are inline for `k ≤ 4`, so a
/// warmed serving loop takes hits and compiles misses without touching
/// the heap.
#[derive(Clone, Debug)]
pub struct PlanCache {
    slots: Vec<PlanSlot>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Default shape working-set bound: comfortably above any paper
    /// workload mix (the serving mixes use at most a dozen shapes)
    /// while keeping the linear probe short.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` compiled shapes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a plan cache needs at least one slot");
        PlanCache {
            slots: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The slot bound this cache was built with (shapes it can hold
    /// before evicting). Consumers that replicate the cache's LRU
    /// behavior out-of-band (e.g. sharded serving's hit/miss replay)
    /// read this instead of hard-coding [`PlanCache::DEFAULT_CAPACITY`].
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Compiled shapes currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no compiled shapes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drops every cached plan (keeping slot capacity) and resets the
    /// LRU clock. Serving loops call this at run start so cache
    /// behavior depends only on the run's own query sequence.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.tick = 0;
    }

    /// Returns `(hits, misses)` accumulated since the last drain and
    /// resets both to zero.
    pub fn drain_stats(&mut self) -> (u64, u64) {
        let stats = (self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
        stats
    }

    /// The plan for `region`'s shape on `kernel`, compiling (and
    /// inserting, evicting the least-recently-used slot when full) on
    /// miss.
    fn ensure(&mut self, kernel: &DiskCounts, region: &BucketRegion) -> &CornerPlan {
        self.tick += 1;
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.plan.matches(kernel, region))
        {
            self.hits += 1;
            self.slots[i].last_used = self.tick;
            return &self.slots[i].plan;
        }
        self.misses += 1;
        let slot = PlanSlot {
            plan: kernel.compile_plan(region),
            last_used: self.tick,
        };
        let i = if self.slots.len() < self.capacity {
            self.slots.push(slot);
            self.slots.len() - 1
        } else {
            let (lru, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .expect("capacity > 0 means the full cache is non-empty");
            self.slots[lru] = slot;
            lru
        };
        &self.slots[i].plan
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskCounts {
    /// Builds the per-disk prefix-sum table for `map`, choosing the
    /// narrow (`u16`) count lane whenever the bucket total fits.
    ///
    /// # Errors
    /// [`MethodError::UnsupportedGrid`] if the `buckets × disks` table
    /// would not fit in memory (callers should fall back to the naive
    /// per-bucket walk).
    pub fn build(map: &AllocationMap) -> Result<Self> {
        Self::build_inner(map, false)
    }

    /// Builds the kernel with `u32` count lanes regardless of grid size —
    /// the v1 layout. A testing/benchmark hook for comparing lane
    /// widths; [`DiskCounts::build`] picks the narrow lane automatically
    /// whenever it fits and the two produce identical counts
    /// (property-tested below).
    ///
    /// # Errors
    /// As [`DiskCounts::build`].
    pub fn build_wide(map: &AllocationMap) -> Result<Self> {
        Self::build_inner(map, true)
    }

    fn build_inner(map: &AllocationMap, force_wide: bool) -> Result<Self> {
        let space = map.space();
        let m = map.num_disks();
        let too_large = || MethodError::UnsupportedGrid {
            method: "DiskCounts",
            reason: "buckets x disks table too large to materialize".into(),
        };
        // The largest possible count is the bucket total, so the total
        // itself must fit the widest lane; `2^k` corner enumeration
        // additionally needs `k` to stay a sane bit-mask width.
        let total = usize::try_from(space.num_buckets()).map_err(|_| too_large())?;
        if space.num_buckets() > u64::from(u32::MAX) || space.dims().len() > 24 {
            return Err(too_large());
        }
        let narrow = !force_wide && total <= usize::from(u16::MAX);
        let lane_bytes = if narrow { 2 } else { 4 };
        let cells = total.checked_mul(m as usize).ok_or_else(too_large)?;
        // Cap the table at ~1 GiB so a huge grid degrades to the naive
        // walk instead of aborting on allocation failure.
        if cells.checked_mul(lane_bytes).ok_or_else(too_large)? > 1usize << 30 {
            return Err(too_large());
        }

        let dims = space.dims().to_vec();
        let k = dims.len();
        let mut strides = vec![1usize; k];
        for i in (0..k.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1] as usize;
        }

        let lanes = m as usize;
        let table = if narrow {
            CountLane::U16(build_table(map, lanes, &dims, &strides))
        } else {
            CountLane::U32(build_table(map, lanes, &dims, &strides))
        };
        KERNEL_BUILDS.fetch_add(1, Ordering::Relaxed);
        Ok(DiskCounts {
            m,
            dims,
            strides,
            table,
        })
    }

    /// Reassembles a kernel from its persisted parts (the v3 image
    /// loader in `persist`). The caller guarantees the parts are
    /// mutually consistent — `persist` revalidates dims, strides, and
    /// cell count before calling. Does not count as a build: nothing
    /// walks the grid.
    pub(crate) fn from_parts(
        m: u32,
        dims: Vec<u32>,
        strides: Vec<usize>,
        table: CountLane,
    ) -> Self {
        DiskCounts {
            m,
            dims,
            strides,
            table,
        }
    }

    /// Partitions per dimension (cached from the grid at build time).
    pub(crate) fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Cell strides in rows (a row is `m` lanes wide).
    pub(crate) fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// The table at its native lane width (for serialization).
    pub(crate) fn lane(&self) -> &CountLane {
        &self.table
    }

    /// Disks (`M`).
    #[inline]
    pub fn num_disks(&self) -> u32 {
        self.m
    }

    /// Bits per stored count: 16 on paper-sized grids, 32 on grids with
    /// more than `u16::MAX` buckets (and under [`DiskCounts::build_wide`]).
    pub fn lane_bits(&self) -> u32 {
        match self.table {
            CountLane::U16(_) => u16::BITS,
            CountLane::U32(_) => u32::BITS,
        }
    }

    /// Approximate heap footprint of the table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.bytes()
    }

    /// Compiles `region`'s *shape* into a [`CornerPlan`] for this
    /// kernel's grid. The plan answers every placement of that shape —
    /// on this kernel or any other kernel over the same grid.
    ///
    /// # Panics
    /// Panics if the region's arity does not match the grid.
    pub fn compile_plan(&self, region: &BucketRegion) -> CornerPlan {
        let k = self.dims.len();
        assert_eq!(region.dims(), k, "region arity does not match grid");
        let mut extents: SmallVec<[u32; 8]> = SmallVec::new();
        for dim in 0..k {
            extents.push(region.extent(dim) as u32);
        }
        let mut corners: SmallVec<[PlanCorner; 16]> = SmallVec::new();
        for mask in 0u32..(1u32 << k) {
            let mut offset = 0i64;
            for dim in 0..k {
                let stride = self.strides[dim] as i64;
                if mask & (1 << dim) != 0 {
                    // Excluded slab below the lower face: row `lo - 1`.
                    offset -= stride;
                } else {
                    // Inclusive upper face: row `lo + extent - 1`.
                    offset += (i64::from(extents[dim]) - 1) * stride;
                }
            }
            corners.push(PlanCorner {
                lo_mask: mask,
                offset,
                sign: if mask.count_ones() % 2 == 0 { 1 } else { -1 },
            });
        }
        CornerPlan {
            extents,
            strides: SmallVec::from_slice(&self.strides),
            corners,
        }
    }

    /// The base row of `region`'s `lo` corner plus the bit-mask of
    /// dimensions sitting on the grid edge (whose low-face corners
    /// vanish).
    #[inline]
    fn base_and_edge(&self, region: &BucketRegion) -> (usize, u32) {
        let lo = region.lo().as_slice();
        let mut base = 0usize;
        let mut edge = 0u32;
        for (dim, &stride) in self.strides.iter().enumerate() {
            let l = lo[dim] as usize;
            base += l * stride;
            if l == 0 {
                edge |= 1 << dim;
            }
        }
        (base, edge)
    }

    /// Ensures `scratch` caches a plan valid for `region` on this
    /// kernel, counting the hit or the recompilation.
    fn ensure_plan(&self, region: &BucketRegion, scratch: &mut Scratch) {
        match &scratch.plan {
            Some(p) if p.matches(self, region) => scratch.plan_hits += 1,
            _ => {
                scratch.plan_compiles += 1;
                scratch.plan = Some(self.compile_plan(region));
            }
        }
    }

    /// The planned RT reduction through `scratch`: ensures the plan,
    /// accumulates `region`'s per-disk counts in native lane width, and
    /// returns the max over (optionally `live`-masked) lanes.
    fn planned_response_time(
        &self,
        region: &BucketRegion,
        scratch: &mut Scratch,
        live: Option<&[bool]>,
    ) -> u64 {
        self.ensure_plan(region, scratch);
        let (base, edge) = self.base_and_edge(region);
        let lanes = self.m as usize;
        let Scratch {
            acc16, acc32, plan, ..
        } = scratch;
        let plan = plan.as_ref().expect("plan just ensured");
        match &self.table {
            CountLane::U16(t) => planned_max(t, lanes, plan, base, edge, acc16, live),
            CountLane::U32(t) => planned_max(t, lanes, plan, base, edge, acc32, live),
        }
    }

    /// Visits every inclusion–exclusion corner of `region`, returning
    /// `(sign, table row)` pairs. Corners that fall off the low edge
    /// contribute zero and are dropped. This is the v1 per-query path,
    /// kept for one-shot queries (and as the benchmark baseline for the
    /// planned path); sweeps should compile the shape once instead.
    fn corners(&self, region: &BucketRegion) -> SmallVec<[(i64, usize); 16]> {
        let k = self.dims.len();
        debug_assert_eq!(region.dims(), k, "region arity does not match grid");
        let lo = region.lo().as_slice();
        let hi = region.hi().as_slice();
        // Per-dimension row offsets for the two corner choices: the
        // inclusive upper face (`hi`) and the excluded slab below the
        // lower face (`lo - 1`, absent when the query touches the edge).
        let mut hi_off: SmallVec<[usize; 8]> = SmallVec::new();
        let mut lo_off: SmallVec<[Option<usize>; 8]> = SmallVec::new();
        for dim in 0..k {
            hi_off.push(hi[dim] as usize * self.strides[dim]);
            lo_off.push(if lo[dim] == 0 {
                None
            } else {
                Some((lo[dim] as usize - 1) * self.strides[dim])
            });
        }
        let mut corners: SmallVec<[(i64, usize); 16]> = SmallVec::new();
        'corner: for mask in 0u32..(1u32 << k) {
            let mut row = 0usize;
            for dim in 0..k {
                if mask & (1 << dim) != 0 {
                    match lo_off[dim] {
                        Some(off) => row += off,
                        None => continue 'corner,
                    }
                } else {
                    row += hi_off[dim];
                }
            }
            let sign = if mask.count_ones() % 2 == 0 { 1 } else { -1 };
            corners.push((sign, row));
        }
        corners
    }

    /// Fills `acc` (length `M`) via the per-query corner walk.
    fn fill_corners(&self, region: &BucketRegion, acc: &mut [i64]) {
        let corners = self.corners(region);
        let lanes = self.m as usize;
        match &self.table {
            CountLane::U16(t) => accumulate_rows(t, lanes, &corners, acc),
            CountLane::U32(t) => accumulate_rows(t, lanes, &corners, acc),
        }
    }

    /// Per-disk bucket counts of `region` (the access histogram), via
    /// `2^k` corner lookups per disk.
    pub fn access_histogram(&self, region: &BucketRegion) -> Vec<u64> {
        let lanes = self.m as usize;
        let mut acc: SmallVec<[i64; 32]> = SmallVec::from_elem(0i64, lanes);
        self.fill_corners(region, &mut acc);
        acc.iter()
            .map(|&c| {
                debug_assert!(c >= 0, "inclusion-exclusion produced a negative count");
                c as u64
            })
            .collect()
    }

    /// As [`DiskCounts::access_histogram`], but through the scratch's
    /// plan cache and accumulator into a caller-owned buffer — nothing
    /// allocated per query once the buffers have grown.
    pub fn access_histogram_with(
        &self,
        region: &BucketRegion,
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) {
        self.ensure_plan(region, scratch);
        let (base, edge) = self.base_and_edge(region);
        let lanes = self.m as usize;
        let Scratch {
            acc16, acc32, plan, ..
        } = scratch;
        let plan = plan.as_ref().expect("plan just ensured");
        out.clear();
        match &self.table {
            CountLane::U16(t) => {
                accumulate_planned(t, lanes, plan, base, edge, acc16);
                out.extend(acc16.iter().map(|v| v.widen() as u64));
            }
            CountLane::U32(t) => {
                accumulate_planned(t, lanes, plan, base, edge, acc32);
                out.extend(acc32.iter().map(|v| v.widen() as u64));
            }
        }
    }

    /// As [`DiskCounts::access_histogram_with`], but resolving the plan
    /// through a cross-query [`PlanCache`] instead of the scratch's
    /// single slot — the serving-loop hot path, where arrivals
    /// interleave different shapes. The scratch still provides the
    /// native-width accumulators; its own plan slot is untouched.
    pub fn access_histogram_cached(
        &self,
        region: &BucketRegion,
        plans: &mut PlanCache,
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) {
        let (base, edge) = self.base_and_edge(region);
        let lanes = self.m as usize;
        let plan = plans.ensure(self, region);
        out.clear();
        match &self.table {
            CountLane::U16(t) => {
                accumulate_planned(t, lanes, plan, base, edge, &mut scratch.acc16);
                out.extend(scratch.acc16.iter().map(|v| v.widen() as u64));
            }
            CountLane::U32(t) => {
                accumulate_planned(t, lanes, plan, base, edge, &mut scratch.acc32);
                out.extend(scratch.acc32.iter().map(|v| v.widen() as u64));
            }
        }
    }

    /// Response time of `region`: max over disks of its per-disk bucket
    /// count. `O(M · 2^k)`, independent of the region's area.
    ///
    /// This entry point re-derives the corner rows per query; when
    /// scoring many placements, prefer [`DiskCounts::response_time_with`],
    /// which amortizes that work over every query of the same shape.
    pub fn response_time(&self, region: &BucketRegion) -> u64 {
        let lanes = self.m as usize;
        let mut acc: SmallVec<[i64; 32]> = SmallVec::from_elem(0i64, lanes);
        self.fill_corners(region, &mut acc);
        acc.iter().map(|&c| c.max(0) as u64).max().unwrap_or(0)
    }

    /// Response time of `region` through `scratch`'s shape-compiled plan
    /// and reusable accumulator: the kernel-v2 hot path. Equal to
    /// [`DiskCounts::response_time`] on every input (property-tested);
    /// only the constant factor differs.
    pub fn response_time_with(&self, region: &BucketRegion, scratch: &mut Scratch) -> u64 {
        self.planned_response_time(region, scratch, None)
    }

    /// Response time of `region` restricted to the disks marked live in
    /// `live`: the max per-disk count over live disks only. Dead disks'
    /// buckets are excluded (they are served elsewhere — or not at all —
    /// which degraded-mode execution accounts for separately). Still
    /// `O(M · 2^k)`, so degraded evaluation keeps the kernel's cost
    /// profile.
    ///
    /// # Panics
    /// Panics if `live.len()` differs from the disk count (a caller
    /// contract, like [`DiskCounts::count_on_disk`]'s range check).
    pub fn masked_response_time(&self, region: &BucketRegion, live: &[bool]) -> u64 {
        assert_eq!(
            live.len(),
            self.m as usize,
            "live mask length {} does not match disk count {}",
            live.len(),
            self.m
        );
        let lanes = self.m as usize;
        let mut acc: SmallVec<[i64; 32]> = SmallVec::from_elem(0i64, lanes);
        self.fill_corners(region, &mut acc);
        acc.iter()
            .zip(live)
            .filter(|(_, &l)| l)
            .map(|(&c, _)| c.max(0) as u64)
            .max()
            .unwrap_or(0)
    }

    /// As [`DiskCounts::masked_response_time`], through the plan cache
    /// and scratch accumulator — the degraded-mode analogue of
    /// [`DiskCounts::response_time_with`].
    ///
    /// # Panics
    /// Panics if `live.len()` differs from the disk count.
    pub fn masked_response_time_with(
        &self,
        region: &BucketRegion,
        live: &[bool],
        scratch: &mut Scratch,
    ) -> u64 {
        assert_eq!(
            live.len(),
            self.m as usize,
            "live mask length {} does not match disk count {}",
            live.len(),
            self.m
        );
        self.planned_response_time(region, scratch, Some(live))
    }

    /// Bucket count of `region` on one disk (`2^k` lookups). Used by
    /// availability analysis, which only needs the failed disk's share.
    pub fn count_on_disk(&self, region: &BucketRegion, disk: u32) -> u64 {
        assert!(disk < self.m, "disk {disk} out of range (m = {})", self.m);
        let corners = self.corners(region);
        let lanes = self.m as usize;
        let idx = disk as usize;
        let acc: i64 = match &self.table {
            CountLane::U16(t) => corners
                .iter()
                .map(|&(sign, row)| sign * t[row * lanes + idx].widen())
                .sum(),
            CountLane::U32(t) => corners
                .iter()
                .map(|&(sign, row)| sign * t[row * lanes + idx].widen())
                .sum(),
        };
        acc.max(0) as u64
    }

    /// As [`DiskCounts::count_on_disk`], through the scratch's plan
    /// cache: per placement of a repeated shape only the single lane is
    /// read per corner, with no corner re-derivation.
    ///
    /// # Panics
    /// Panics if `disk` is out of range.
    pub fn count_on_disk_with(
        &self,
        region: &BucketRegion,
        disk: u32,
        scratch: &mut Scratch,
    ) -> u64 {
        assert!(disk < self.m, "disk {disk} out of range (m = {})", self.m);
        self.ensure_plan(region, scratch);
        let (base, edge) = self.base_and_edge(region);
        let lanes = self.m as usize;
        let idx = disk as usize;
        let plan = scratch.plan.as_ref().expect("plan just ensured");
        let single = |rows: &dyn Fn(usize) -> i64| -> i64 {
            plan.corners
                .iter()
                .filter(|c| c.lo_mask & edge == 0)
                .map(|c| c.sign * rows((base as i64 + c.offset) as usize * lanes + idx))
                .sum()
        };
        let acc = match &self.table {
            CountLane::U16(t) => single(&|i| t[i].widen()),
            CountLane::U32(t) => single(&|i| t[i].widen()),
        };
        acc.max(0) as u64
    }
}

impl AllocationMap {
    /// Builds the [`DiskCounts`] prefix-sum kernel for this allocation.
    ///
    /// # Errors
    /// [`MethodError::UnsupportedGrid`] when the table would be too
    /// large; callers should fall back to [`AllocationMap::response_time`].
    pub fn disk_counts(&self) -> Result<DiskCounts> {
        DiskCounts::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModulo, FieldwiseXor, RandomAlloc};
    use decluster_grid::{BucketRegion, GridSpace, RangeQuery};

    fn kernel_for(
        space: &GridSpace,
        method: &dyn crate::DeclusteringMethod,
    ) -> (AllocationMap, DiskCounts) {
        let map = AllocationMap::from_method(space, method).unwrap();
        let dc = map.disk_counts().unwrap();
        (map, dc)
    }

    #[test]
    fn matches_naive_on_pinned_2d_cases() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        for (lo, hi) in [
            ([0, 0], [0, 3]),
            ([0, 0], [1, 1]),
            ([1, 2], [5, 6]),
            ([0, 0], [7, 7]),
        ] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            assert_eq!(dc.response_time(&r), map.response_time(&r));
            assert_eq!(dc.access_histogram(&r), map.access_histogram(&r));
        }
    }

    #[test]
    fn exhaustive_2d_regions_match_naive() {
        let g = GridSpace::new_2d(5, 7).unwrap();
        let fx = FieldwiseXor::new(&g, 3).unwrap();
        let (map, dc) = kernel_for(&g, &fx);
        for y0 in 0..5u32 {
            for y1 in y0..5 {
                for x0 in 0..7u32 {
                    for x1 in x0..7 {
                        let r = BucketRegion::new(&g, [y0, x0].into(), [y1, x1].into()).unwrap();
                        assert_eq!(dc.response_time(&r), map.response_time(&r));
                    }
                }
            }
        }
    }

    #[test]
    fn planned_path_matches_exhaustively() {
        let g = GridSpace::new_2d(5, 7).unwrap();
        let fx = FieldwiseXor::new(&g, 3).unwrap();
        let (map, dc) = kernel_for(&g, &fx);
        let mut scratch = Scratch::new();
        let mut hist = Vec::new();
        for y0 in 0..5u32 {
            for y1 in y0..5 {
                for x0 in 0..7u32 {
                    for x1 in x0..7 {
                        let r = BucketRegion::new(&g, [y0, x0].into(), [y1, x1].into()).unwrap();
                        assert_eq!(
                            dc.response_time_with(&r, &mut scratch),
                            map.response_time(&r)
                        );
                        dc.access_histogram_with(&r, &mut scratch, &mut hist);
                        assert_eq!(hist, map.access_histogram(&r));
                    }
                }
            }
        }
        let (hits, compiles) = scratch.drain_plan_stats();
        assert_eq!(hits + compiles, 2 * 420, "every call hit or compiled");
        assert!(compiles >= 1);
    }

    #[test]
    fn plan_is_reused_while_the_shape_repeats() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        let mut scratch = Scratch::new();
        // Sixteen placements of the same 3x5 shape: one compile, the
        // rest plan hits, all equal to the naive walk.
        for dy in 0..4u32 {
            for dx in 0..4 {
                let r = BucketRegion::new(&g, [dy, dx].into(), [dy + 2, dx + 4].into()).unwrap();
                assert_eq!(
                    dc.response_time_with(&r, &mut scratch),
                    map.response_time(&r)
                );
            }
        }
        assert_eq!(scratch.drain_plan_stats(), (15, 1));
        // A new shape forces exactly one recompile.
        let r = BucketRegion::new(&g, [0, 0].into(), [1, 1].into()).unwrap();
        let _ = dc.response_time_with(&r, &mut scratch);
        assert_eq!(scratch.drain_plan_stats(), (0, 1));
    }

    #[test]
    fn plan_revalidates_across_grids() {
        // Same extents, different grid layout: the cached plan must not
        // leak between kernels with different strides.
        let g1 = GridSpace::new_2d(8, 8).unwrap();
        let g2 = GridSpace::new_2d(8, 16).unwrap();
        let (map1, dc1) = kernel_for(&g1, &DiskModulo::new(&g1, 4).unwrap());
        let (map2, dc2) = kernel_for(&g2, &DiskModulo::new(&g2, 4).unwrap());
        let r1 = BucketRegion::new(&g1, [1, 1].into(), [3, 3].into()).unwrap();
        let r2 = BucketRegion::new(&g2, [1, 1].into(), [3, 3].into()).unwrap();
        let mut scratch = Scratch::new();
        assert_eq!(
            dc1.response_time_with(&r1, &mut scratch),
            map1.response_time(&r1)
        );
        assert_eq!(
            dc2.response_time_with(&r2, &mut scratch),
            map2.response_time(&r2)
        );
        let (hits, compiles) = scratch.drain_plan_stats();
        assert_eq!((hits, compiles), (0, 2), "stride change must recompile");
    }

    #[test]
    fn plan_cache_amortizes_interleaved_shapes() {
        // Two alternating shapes thrash the one-slot Scratch cache but
        // fit the cross-query cache: one compile each, hits thereafter.
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        let mut plans = PlanCache::new();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for i in 0..10u32 {
            let (h, w) = if i % 2 == 0 { (2, 2) } else { (3, 5) };
            let r = BucketRegion::new(&g, [i, i].into(), [i + h - 1, i + w - 1].into()).unwrap();
            dc.access_histogram_cached(&r, &mut plans, &mut scratch, &mut out);
            assert_eq!(out, map.access_histogram(&r));
        }
        assert_eq!(plans.len(), 2);
        assert_eq!(plans.drain_stats(), (8, 2), "one compile per live shape");
        // The scratch's own single slot was never touched.
        assert_eq!(scratch.drain_plan_stats(), (0, 0));
        // clear() forgets the shapes but keeps counting deterministic.
        plans.clear();
        assert!(plans.is_empty());
        let r = BucketRegion::new(&g, [0, 0].into(), [1, 1].into()).unwrap();
        dc.access_histogram_cached(&r, &mut plans, &mut scratch, &mut out);
        assert_eq!(plans.drain_stats(), (0, 1));
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (_, dc) = kernel_for(&g, &dm);
        let mut plans = PlanCache::with_capacity(2);
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let shape = |w: u32| BucketRegion::new(&g, [0, 0].into(), [0, w].into()).unwrap();
        // Fill: shapes A, B. Touch A so B is the LRU victim.
        dc.access_histogram_cached(&shape(1), &mut plans, &mut scratch, &mut out);
        dc.access_histogram_cached(&shape(2), &mut plans, &mut scratch, &mut out);
        dc.access_histogram_cached(&shape(1), &mut plans, &mut scratch, &mut out);
        // C evicts B; A must still be cached.
        dc.access_histogram_cached(&shape(3), &mut plans, &mut scratch, &mut out);
        assert_eq!(plans.len(), 2);
        let _ = plans.drain_stats();
        dc.access_histogram_cached(&shape(1), &mut plans, &mut scratch, &mut out);
        assert_eq!(plans.drain_stats(), (1, 0), "A survived the eviction");
        dc.access_histogram_cached(&shape(2), &mut plans, &mut scratch, &mut out);
        assert_eq!(plans.drain_stats(), (0, 1), "B was evicted");
    }

    #[test]
    fn plan_cache_revalidates_strides_across_grids() {
        // Same shape extents on two grids with different strides: the
        // cache must compile per grid, never serving one grid's plan to
        // the other.
        let g1 = GridSpace::new_2d(8, 8).unwrap();
        let g2 = GridSpace::new_2d(8, 16).unwrap();
        let (map1, dc1) = kernel_for(&g1, &DiskModulo::new(&g1, 4).unwrap());
        let (map2, dc2) = kernel_for(&g2, &DiskModulo::new(&g2, 4).unwrap());
        let r1 = BucketRegion::new(&g1, [1, 1].into(), [3, 3].into()).unwrap();
        let r2 = BucketRegion::new(&g2, [1, 1].into(), [3, 3].into()).unwrap();
        let mut plans = PlanCache::new();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        dc1.access_histogram_cached(&r1, &mut plans, &mut scratch, &mut out);
        assert_eq!(out, map1.access_histogram(&r1));
        dc2.access_histogram_cached(&r2, &mut plans, &mut scratch, &mut out);
        assert_eq!(out, map2.access_histogram(&r2));
        assert_eq!(plans.drain_stats(), (0, 2), "stride change must compile");
        assert_eq!(plans.len(), 2, "both grids' plans coexist");
    }

    #[test]
    fn narrow_and_wide_lanes_agree_bucket_for_bucket() {
        let g = GridSpace::new(vec![6, 5, 4]).unwrap();
        let ra = RandomAlloc::new(&g, 7, 99).unwrap();
        let map = AllocationMap::from_method(&g, &ra).unwrap();
        let narrow = DiskCounts::build(&map).unwrap();
        let wide = DiskCounts::build_wide(&map).unwrap();
        assert_eq!(narrow.lane_bits(), 16);
        assert_eq!(wide.lane_bits(), 32);
        assert_eq!(narrow.table_bytes() * 2, wide.table_bytes());
        for (lo, hi) in [
            ([0, 0, 0], [5, 4, 3]),
            ([1, 2, 0], [4, 4, 2]),
            ([2, 2, 2], [2, 2, 2]),
        ] {
            let r = BucketRegion::new(&g, lo.into(), hi.into()).unwrap();
            assert_eq!(narrow.access_histogram(&r), wide.access_histogram(&r));
            assert_eq!(narrow.response_time(&r), wide.response_time(&r));
            for d in 0..7 {
                assert_eq!(narrow.count_on_disk(&r, d), wide.count_on_disk(&r, d));
            }
        }
    }

    #[test]
    fn large_grids_pick_the_wide_lane_automatically() {
        // 300x300 = 90_000 buckets > u16::MAX: counts need u32 lanes.
        let g = GridSpace::new_2d(300, 300).unwrap();
        let dm = DiskModulo::new(&g, 3).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        assert_eq!(dc.lane_bits(), 32);
        let full = BucketRegion::full(&g);
        assert_eq!(dc.response_time(&full), map.load_stats().max);
        let r = BucketRegion::new(&g, [17, 250].into(), [140, 299].into()).unwrap();
        assert_eq!(dc.response_time(&r), map.response_time(&r));
        let mut scratch = Scratch::new();
        assert_eq!(
            dc.response_time_with(&r, &mut scratch),
            map.response_time(&r)
        );
    }

    #[test]
    fn histogram_sums_to_region_volume_in_3d() {
        let g = GridSpace::new(vec![4, 5, 3]).unwrap();
        let ra = RandomAlloc::new(&g, 6, 77).unwrap();
        let (map, dc) = kernel_for(&g, &ra);
        let r = BucketRegion::new(&g, [1, 0, 1].into(), [3, 4, 2].into()).unwrap();
        assert_eq!(dc.access_histogram(&r).iter().sum::<u64>(), r.num_buckets());
        assert_eq!(dc.access_histogram(&r), map.access_histogram(&r));
        assert_eq!(dc.response_time(&r), map.response_time(&r));
    }

    #[test]
    fn count_on_disk_matches_histogram() {
        let g = GridSpace::new_2d(6, 6).unwrap();
        let dm = DiskModulo::new(&g, 5).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        let r = BucketRegion::new(&g, [2, 1].into(), [5, 4].into()).unwrap();
        let hist = map.access_histogram(&r);
        let mut scratch = Scratch::new();
        for d in 0..5 {
            assert_eq!(dc.count_on_disk(&r, d), hist[d as usize]);
            assert_eq!(dc.count_on_disk_with(&r, d, &mut scratch), hist[d as usize]);
        }
    }

    #[test]
    fn single_bucket_and_full_grid_regions() {
        let g = GridSpace::new(vec![3, 4, 2]).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        let point = BucketRegion::point(&g, [2, 3, 1].into()).unwrap();
        assert_eq!(dc.response_time(&point), 1);
        let full = BucketRegion::full(&g);
        assert_eq!(dc.response_time(&full), map.load_stats().max);
    }

    #[test]
    fn masked_response_time_matches_filtered_histogram() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let fx = FieldwiseXor::new(&g, 5).unwrap();
        let (map, dc) = kernel_for(&g, &fx);
        let r = BucketRegion::new(&g, [1, 1].into(), [6, 5].into()).unwrap();
        let hist = map.access_histogram(&r);
        let mut scratch = Scratch::new();
        // All-live mask equals the plain response time.
        assert_eq!(
            dc.masked_response_time(&r, &[true; 5]),
            dc.response_time(&r)
        );
        assert_eq!(
            dc.masked_response_time_with(&r, &[true; 5], &mut scratch),
            dc.response_time(&r)
        );
        // Every single-dead mask equals the max over the surviving lanes.
        for dead in 0..5usize {
            let mut live = [true; 5];
            live[dead] = false;
            let expect = hist
                .iter()
                .enumerate()
                .filter(|&(d, _)| d != dead)
                .map(|(_, &c)| c)
                .max()
                .unwrap();
            assert_eq!(dc.masked_response_time(&r, &live), expect, "dead {dead}");
            assert_eq!(
                dc.masked_response_time_with(&r, &live, &mut scratch),
                expect,
                "dead {dead} (planned)"
            );
        }
        // No disk live: nothing to serve.
        assert_eq!(dc.masked_response_time(&r, &[false; 5]), 0);
        assert_eq!(
            dc.masked_response_time_with(&r, &[false; 5], &mut scratch),
            0
        );
    }

    #[test]
    #[should_panic(expected = "live mask length")]
    fn masked_response_time_rejects_wrong_mask_length() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        let dm = DiskModulo::new(&g, 3).unwrap();
        let (_map, dc) = kernel_for(&g, &dm);
        let r = BucketRegion::new(&g, [0, 0].into(), [1, 1].into()).unwrap();
        let _ = dc.masked_response_time(&r, &[true, true]);
    }

    #[test]
    fn one_dimensional_grid() {
        let g = GridSpace::new(vec![17]).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        let mut scratch = Scratch::new();
        for lo in 0..17u32 {
            for hi in lo..17 {
                let r = BucketRegion::new(&g, [lo].into(), [hi].into()).unwrap();
                assert_eq!(dc.response_time(&r), map.response_time(&r));
                assert_eq!(
                    dc.response_time_with(&r, &mut scratch),
                    map.response_time(&r)
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{DeclusteringMethod, DiskModulo, FieldwiseXor, RandomAlloc, RoundRobin};
    use decluster_grid::GridSpace;
    use proptest::prelude::*;

    /// Random grid (k in 1..=3, each dimension at most 32), method, and
    /// region inside the grid — including edge-clipped and single-bucket
    /// regions, which exercise the `lo == 0` corner dropping.
    fn grid_method_region() -> impl Strategy<Value = (GridSpace, AllocationMap, BucketRegion)> {
        (proptest::collection::vec(1u32..=32, 1..4), 2u32..=8, 0u8..4).prop_flat_map(
            |(dims, m, which)| {
                let g = GridSpace::new(dims.clone()).unwrap();
                let method: Box<dyn DeclusteringMethod> = match which {
                    0 => Box::new(DiskModulo::new(&g, m).unwrap()),
                    1 => Box::new(FieldwiseXor::new(&g, m).unwrap()),
                    2 => Box::new(RoundRobin::new(&g, m).unwrap()),
                    _ => Box::new(RandomAlloc::new(&g, m, 42).unwrap()),
                };
                let map = AllocationMap::from_method(&g, method.as_ref()).unwrap();
                // Draw one raw u64 per dimension and split it into an
                // unordered corner pair; sorting the pair yields lo/hi.
                proptest::collection::vec(0u64..u64::MAX, dims.len()..dims.len() + 1).prop_map(
                    move |raws| {
                        let mut lo = Vec::with_capacity(raws.len());
                        let mut hi = Vec::with_capacity(raws.len());
                        for (raw, &d) in raws.iter().zip(&dims) {
                            let a = (raw % u64::from(d)) as u32;
                            let b = ((raw >> 32) % u64::from(d)) as u32;
                            lo.push(a.min(b));
                            hi.push(a.max(b));
                        }
                        let r = BucketRegion::new(&g, lo.into(), hi.into()).unwrap();
                        (g.clone(), map.clone(), r)
                    },
                )
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn kernel_matches_naive_response_time((_g, map, r) in grid_method_region()) {
            let dc = map.disk_counts().unwrap();
            prop_assert_eq!(dc.response_time(&r), map.response_time(&r));
        }

        #[test]
        fn kernel_matches_naive_histogram((_g, map, r) in grid_method_region()) {
            let dc = map.disk_counts().unwrap();
            prop_assert_eq!(dc.access_histogram(&r), map.access_histogram(&r));
        }

        /// Kernel v2 contract: the shape-compiled plan + scratch path
        /// equals the naive walk — both on a cold scratch and on one
        /// carrying a (possibly mismatched) plan from another query.
        #[test]
        fn planned_kernel_matches_naive_walk((g, map, r) in grid_method_region()) {
            let dc = map.disk_counts().unwrap();
            let mut scratch = Scratch::new();
            prop_assert_eq!(dc.response_time_with(&r, &mut scratch), map.response_time(&r));
            // Re-use the same scratch against the full grid (usually a
            // different shape): the plan must revalidate, not go stale.
            let full = BucketRegion::full(&g);
            prop_assert_eq!(dc.response_time_with(&full, &mut scratch), map.response_time(&full));
            prop_assert_eq!(dc.response_time_with(&r, &mut scratch), map.response_time(&r));
            let mut hist = Vec::new();
            dc.access_histogram_with(&r, &mut scratch, &mut hist);
            prop_assert_eq!(hist, map.access_histogram(&r));
        }

        /// Adaptive-width contract: u16 and u32 lane tables agree
        /// bucket-for-bucket on histograms, RT, and per-disk counts.
        #[test]
        fn narrow_and_wide_lane_tables_agree((_g, map, r) in grid_method_region()) {
            let narrow = DiskCounts::build(&map).unwrap();
            let wide = DiskCounts::build_wide(&map).unwrap();
            prop_assert_eq!(narrow.lane_bits(), 16); // <= 32^3 buckets always fits
            prop_assert_eq!(wide.lane_bits(), 32);
            prop_assert_eq!(narrow.access_histogram(&r), wide.access_histogram(&r));
            prop_assert_eq!(narrow.response_time(&r), wide.response_time(&r));
            let mut scratch = Scratch::new();
            for d in 0..map.num_disks() {
                prop_assert_eq!(narrow.count_on_disk(&r, d), wide.count_on_disk(&r, d));
                prop_assert_eq!(
                    narrow.count_on_disk_with(&r, d, &mut scratch),
                    wide.count_on_disk(&r, d)
                );
            }
        }

        #[test]
        fn masked_kernel_matches_filtered_naive(
            (_g, map, r) in grid_method_region(),
            mask_bits in any::<u64>()
        ) {
            let dc = map.disk_counts().unwrap();
            let m = map.num_disks() as usize;
            let live: Vec<bool> = (0..m).map(|d| mask_bits & (1 << d) != 0).collect();
            let expect = map
                .access_histogram(&r)
                .iter()
                .zip(&live)
                .filter(|(_, &l)| l)
                .map(|(&c, _)| c)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(dc.masked_response_time(&r, &live), expect);
            // The planned/scratch degraded path agrees under the same
            // random failure mask.
            let mut scratch = Scratch::new();
            prop_assert_eq!(dc.masked_response_time_with(&r, &live, &mut scratch), expect);
        }
    }
}
