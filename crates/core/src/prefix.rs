use crate::{AllocationMap, DeclusteringMethod, MethodError, Result};
use decluster_grid::BucketRegion;
use smallvec::SmallVec;

/// Batched response-time kernel: one k-D inclusive prefix-sum table per
/// disk over a materialized allocation.
///
/// `table[cell * m + d]` holds the number of buckets with coordinates
/// `≤` the cell's coordinates (component-wise) that live on disk `d` — a
/// per-disk summed-area table. Any rectangular query's per-disk bucket
/// counts then follow from `2^k` inclusion–exclusion corner lookups, so
/// [`DiskCounts::response_time`] costs `O(M · 2^k)` regardless of the
/// query's area, where the naive walk in
/// [`AllocationMap::response_time`] costs `O(|Q|)`. For the paper's
/// sweeps — thousands of placements of large rectangles over a fixed
/// allocation — this turns the dominant cost from the query area into
/// the (tiny) corner count.
///
/// Construction walks the grid once per dimension (`O(k · N · M)` time,
/// `O(N · M)` space for `N` buckets), so the kernel pays off when an
/// allocation is queried more than a handful of times.
#[derive(Clone, Debug)]
pub struct DiskCounts {
    /// Disks (`M`).
    m: u32,
    /// Partitions per dimension, cached from the grid.
    dims: Vec<u32>,
    /// Cell strides in *rows* (a row is `m` lanes wide).
    strides: Vec<usize>,
    /// Inclusive prefix sums, `table[cell * m + disk]`.
    table: Vec<u32>,
}

impl DiskCounts {
    /// Builds the per-disk prefix-sum table for `map`.
    ///
    /// # Errors
    /// [`MethodError::UnsupportedGrid`] if the `buckets × disks` table
    /// would not fit in memory (callers should fall back to the naive
    /// per-bucket walk).
    pub fn build(map: &AllocationMap) -> Result<Self> {
        let space = map.space();
        let m = map.num_disks();
        let too_large = || MethodError::UnsupportedGrid {
            method: "DiskCounts",
            reason: "buckets x disks table too large to materialize".into(),
        };
        // Counts are stored as u32: the largest possible count is the
        // bucket total, so the total itself must fit.
        let total = usize::try_from(space.num_buckets()).map_err(|_| too_large())?;
        if space.num_buckets() > u64::from(u32::MAX) {
            return Err(too_large());
        }
        let rows_times_m = total.checked_mul(m as usize).ok_or_else(too_large)?;
        // Cap the table at ~1 GiB so a huge grid degrades to the naive
        // walk instead of aborting on allocation failure.
        if rows_times_m > (1usize << 30) / std::mem::size_of::<u32>() {
            return Err(too_large());
        }

        let mut table = vec![0u32; rows_times_m];
        for (cell, &disk) in map.table().iter().enumerate() {
            table[cell * m as usize + disk as usize] = 1;
        }

        let dims = space.dims().to_vec();
        let k = dims.len();
        let mut strides = vec![1usize; k];
        for i in (0..k.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1] as usize;
        }

        // One running-sum pass per axis turns indicator rows into
        // inclusive prefix sums over the box `[0, coord]`.
        let lanes = m as usize;
        for axis in 0..k {
            let stride = strides[axis];
            let d = dims[axis] as usize;
            for cell in 0..total {
                if (cell / stride).is_multiple_of(d) {
                    continue;
                }
                let src = (cell - stride) * lanes;
                let dst = cell * lanes;
                for lane in 0..lanes {
                    table[dst + lane] += table[src + lane];
                }
            }
        }

        Ok(DiskCounts {
            m,
            dims,
            strides,
            table,
        })
    }

    /// Disks (`M`).
    #[inline]
    pub fn num_disks(&self) -> u32 {
        self.m
    }

    /// Approximate heap footprint of the table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Visits every inclusion–exclusion corner of `region`, calling
    /// `f(sign, row_offset)` with the signed table-row offset. Corners
    /// that fall off the low edge contribute zero and are skipped.
    #[inline]
    fn for_each_corner(&self, region: &BucketRegion, mut f: impl FnMut(i64, usize)) {
        let k = self.dims.len();
        debug_assert_eq!(region.dims(), k, "region arity does not match grid");
        let lo = region.lo().as_slice();
        let hi = region.hi().as_slice();
        // Per-dimension row offsets for the two corner choices: the
        // inclusive upper face (`hi`) and the excluded slab below the
        // lower face (`lo - 1`, absent when the query touches the edge).
        let mut hi_off: SmallVec<[usize; 8]> = SmallVec::new();
        let mut lo_off: SmallVec<[Option<usize>; 8]> = SmallVec::new();
        for dim in 0..k {
            hi_off.push(hi[dim] as usize * self.strides[dim]);
            lo_off.push(if lo[dim] == 0 {
                None
            } else {
                Some((lo[dim] as usize - 1) * self.strides[dim])
            });
        }
        'corner: for mask in 0u32..(1u32 << k) {
            let mut row = 0usize;
            for dim in 0..k {
                if mask & (1 << dim) != 0 {
                    match lo_off[dim] {
                        Some(off) => row += off,
                        None => continue 'corner,
                    }
                } else {
                    row += hi_off[dim];
                }
            }
            let sign = if mask.count_ones() % 2 == 0 { 1 } else { -1 };
            f(sign, row * self.m as usize);
        }
    }

    /// Per-disk bucket counts of `region` (the access histogram), via
    /// `2^k` corner lookups per disk.
    pub fn access_histogram(&self, region: &BucketRegion) -> Vec<u64> {
        let lanes = self.m as usize;
        let mut acc: SmallVec<[i64; 32]> = SmallVec::from_elem(0i64, lanes);
        self.for_each_corner(region, |sign, base| {
            for (lane, a) in acc.iter_mut().enumerate() {
                *a += sign * i64::from(self.table[base + lane]);
            }
        });
        acc.iter()
            .map(|&c| {
                debug_assert!(c >= 0, "inclusion-exclusion produced a negative count");
                c as u64
            })
            .collect()
    }

    /// Response time of `region`: max over disks of its per-disk bucket
    /// count. `O(M · 2^k)`, independent of the region's area.
    pub fn response_time(&self, region: &BucketRegion) -> u64 {
        let lanes = self.m as usize;
        let mut acc: SmallVec<[i64; 32]> = SmallVec::from_elem(0i64, lanes);
        self.for_each_corner(region, |sign, base| {
            for (lane, a) in acc.iter_mut().enumerate() {
                *a += sign * i64::from(self.table[base + lane]);
            }
        });
        acc.iter().map(|&c| c.max(0) as u64).max().unwrap_or(0)
    }

    /// Response time of `region` restricted to the disks marked live in
    /// `live`: the max per-disk count over live disks only. Dead disks'
    /// buckets are excluded (they are served elsewhere — or not at all —
    /// which degraded-mode execution accounts for separately). Still
    /// `O(M · 2^k)`, so degraded evaluation keeps the kernel's cost
    /// profile.
    ///
    /// # Panics
    /// Panics if `live.len()` differs from the disk count (a caller
    /// contract, like [`DiskCounts::count_on_disk`]'s range check).
    pub fn masked_response_time(&self, region: &BucketRegion, live: &[bool]) -> u64 {
        assert_eq!(
            live.len(),
            self.m as usize,
            "live mask length {} does not match disk count {}",
            live.len(),
            self.m
        );
        let lanes = self.m as usize;
        let mut acc: SmallVec<[i64; 32]> = SmallVec::from_elem(0i64, lanes);
        self.for_each_corner(region, |sign, base| {
            for (lane, a) in acc.iter_mut().enumerate() {
                *a += sign * i64::from(self.table[base + lane]);
            }
        });
        acc.iter()
            .zip(live)
            .filter(|(_, &l)| l)
            .map(|(&c, _)| c.max(0) as u64)
            .max()
            .unwrap_or(0)
    }

    /// Bucket count of `region` on one disk (`2^k` lookups). Used by
    /// availability analysis, which only needs the failed disk's share.
    pub fn count_on_disk(&self, region: &BucketRegion, disk: u32) -> u64 {
        assert!(disk < self.m, "disk {disk} out of range (m = {})", self.m);
        let mut acc = 0i64;
        self.for_each_corner(region, |sign, base| {
            acc += sign * i64::from(self.table[base + disk as usize]);
        });
        acc.max(0) as u64
    }
}

impl AllocationMap {
    /// Builds the [`DiskCounts`] prefix-sum kernel for this allocation.
    ///
    /// # Errors
    /// [`MethodError::UnsupportedGrid`] when the table would be too
    /// large; callers should fall back to [`AllocationMap::response_time`].
    pub fn disk_counts(&self) -> Result<DiskCounts> {
        DiskCounts::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModulo, FieldwiseXor, RandomAlloc};
    use decluster_grid::{BucketRegion, GridSpace, RangeQuery};

    fn kernel_for(
        space: &GridSpace,
        method: &dyn crate::DeclusteringMethod,
    ) -> (AllocationMap, DiskCounts) {
        let map = AllocationMap::from_method(space, method).unwrap();
        let dc = map.disk_counts().unwrap();
        (map, dc)
    }

    #[test]
    fn matches_naive_on_pinned_2d_cases() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        for (lo, hi) in [
            ([0, 0], [0, 3]),
            ([0, 0], [1, 1]),
            ([1, 2], [5, 6]),
            ([0, 0], [7, 7]),
        ] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            assert_eq!(dc.response_time(&r), map.response_time(&r));
            assert_eq!(dc.access_histogram(&r), map.access_histogram(&r));
        }
    }

    #[test]
    fn exhaustive_2d_regions_match_naive() {
        let g = GridSpace::new_2d(5, 7).unwrap();
        let fx = FieldwiseXor::new(&g, 3).unwrap();
        let (map, dc) = kernel_for(&g, &fx);
        for y0 in 0..5u32 {
            for y1 in y0..5 {
                for x0 in 0..7u32 {
                    for x1 in x0..7 {
                        let r = BucketRegion::new(&g, [y0, x0].into(), [y1, x1].into()).unwrap();
                        assert_eq!(dc.response_time(&r), map.response_time(&r));
                    }
                }
            }
        }
    }

    #[test]
    fn histogram_sums_to_region_volume_in_3d() {
        let g = GridSpace::new(vec![4, 5, 3]).unwrap();
        let ra = RandomAlloc::new(&g, 6, 77).unwrap();
        let (map, dc) = kernel_for(&g, &ra);
        let r = BucketRegion::new(&g, [1, 0, 1].into(), [3, 4, 2].into()).unwrap();
        assert_eq!(dc.access_histogram(&r).iter().sum::<u64>(), r.num_buckets());
        assert_eq!(dc.access_histogram(&r), map.access_histogram(&r));
        assert_eq!(dc.response_time(&r), map.response_time(&r));
    }

    #[test]
    fn count_on_disk_matches_histogram() {
        let g = GridSpace::new_2d(6, 6).unwrap();
        let dm = DiskModulo::new(&g, 5).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        let r = BucketRegion::new(&g, [2, 1].into(), [5, 4].into()).unwrap();
        let hist = map.access_histogram(&r);
        for d in 0..5 {
            assert_eq!(dc.count_on_disk(&r, d), hist[d as usize]);
        }
    }

    #[test]
    fn single_bucket_and_full_grid_regions() {
        let g = GridSpace::new(vec![3, 4, 2]).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        let point = BucketRegion::point(&g, [2, 3, 1].into()).unwrap();
        assert_eq!(dc.response_time(&point), 1);
        let full = BucketRegion::full(&g);
        assert_eq!(dc.response_time(&full), map.load_stats().max);
    }

    #[test]
    fn masked_response_time_matches_filtered_histogram() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let fx = FieldwiseXor::new(&g, 5).unwrap();
        let (map, dc) = kernel_for(&g, &fx);
        let r = BucketRegion::new(&g, [1, 1].into(), [6, 5].into()).unwrap();
        let hist = map.access_histogram(&r);
        // All-live mask equals the plain response time.
        assert_eq!(
            dc.masked_response_time(&r, &[true; 5]),
            dc.response_time(&r)
        );
        // Every single-dead mask equals the max over the surviving lanes.
        for dead in 0..5usize {
            let mut live = [true; 5];
            live[dead] = false;
            let expect = hist
                .iter()
                .enumerate()
                .filter(|&(d, _)| d != dead)
                .map(|(_, &c)| c)
                .max()
                .unwrap();
            assert_eq!(dc.masked_response_time(&r, &live), expect, "dead {dead}");
        }
        // No disk live: nothing to serve.
        assert_eq!(dc.masked_response_time(&r, &[false; 5]), 0);
    }

    #[test]
    #[should_panic(expected = "live mask length")]
    fn masked_response_time_rejects_wrong_mask_length() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        let dm = DiskModulo::new(&g, 3).unwrap();
        let (_map, dc) = kernel_for(&g, &dm);
        let r = BucketRegion::new(&g, [0, 0].into(), [1, 1].into()).unwrap();
        let _ = dc.masked_response_time(&r, &[true, true]);
    }

    #[test]
    fn one_dimensional_grid() {
        let g = GridSpace::new(vec![17]).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let (map, dc) = kernel_for(&g, &dm);
        for lo in 0..17u32 {
            for hi in lo..17 {
                let r = BucketRegion::new(&g, [lo].into(), [hi].into()).unwrap();
                assert_eq!(dc.response_time(&r), map.response_time(&r));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{DeclusteringMethod, DiskModulo, FieldwiseXor, RandomAlloc, RoundRobin};
    use decluster_grid::GridSpace;
    use proptest::prelude::*;

    /// Random grid (k in 1..=3, each dimension at most 32), method, and
    /// region inside the grid — including edge-clipped and single-bucket
    /// regions, which exercise the `lo == 0` corner dropping.
    fn grid_method_region() -> impl Strategy<Value = (GridSpace, AllocationMap, BucketRegion)> {
        (proptest::collection::vec(1u32..=32, 1..4), 2u32..=8, 0u8..4).prop_flat_map(
            |(dims, m, which)| {
                let g = GridSpace::new(dims.clone()).unwrap();
                let method: Box<dyn DeclusteringMethod> = match which {
                    0 => Box::new(DiskModulo::new(&g, m).unwrap()),
                    1 => Box::new(FieldwiseXor::new(&g, m).unwrap()),
                    2 => Box::new(RoundRobin::new(&g, m).unwrap()),
                    _ => Box::new(RandomAlloc::new(&g, m, 42).unwrap()),
                };
                let map = AllocationMap::from_method(&g, method.as_ref()).unwrap();
                // Draw one raw u64 per dimension and split it into an
                // unordered corner pair; sorting the pair yields lo/hi.
                proptest::collection::vec(0u64..u64::MAX, dims.len()..dims.len() + 1).prop_map(
                    move |raws| {
                        let mut lo = Vec::with_capacity(raws.len());
                        let mut hi = Vec::with_capacity(raws.len());
                        for (raw, &d) in raws.iter().zip(&dims) {
                            let a = (raw % u64::from(d)) as u32;
                            let b = ((raw >> 32) % u64::from(d)) as u32;
                            lo.push(a.min(b));
                            hi.push(a.max(b));
                        }
                        let r = BucketRegion::new(&g, lo.into(), hi.into()).unwrap();
                        (g.clone(), map.clone(), r)
                    },
                )
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn kernel_matches_naive_response_time((_g, map, r) in grid_method_region()) {
            let dc = map.disk_counts().unwrap();
            prop_assert_eq!(dc.response_time(&r), map.response_time(&r));
        }

        #[test]
        fn kernel_matches_naive_histogram((_g, map, r) in grid_method_region()) {
            let dc = map.disk_counts().unwrap();
            prop_assert_eq!(dc.access_histogram(&r), map.access_histogram(&r));
        }

        #[test]
        fn masked_kernel_matches_filtered_naive(
            (_g, map, r) in grid_method_region(),
            mask_bits in any::<u64>()
        ) {
            let dc = map.disk_counts().unwrap();
            let m = map.num_disks() as usize;
            let live: Vec<bool> = (0..m).map(|d| mask_bits & (1 << d) != 0).collect();
            let expect = map
                .access_histogram(&r)
                .iter()
                .zip(&live)
                .filter(|(_, &l)| l)
                .map(|(&c, _)| c)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(dc.masked_response_time(&r, &live), expect);
        }
    }
}
