use crate::{DeclusteringMethod, MethodError, Result};
use decluster_grid::{DiskId, GridSpace};
use decluster_hilbert::{GrayOrder, MortonOrder};

/// Which space-filling order a [`CurveAlloc`] deals disks along.
///
/// HCAM's design choice is the Hilbert curve; these variants ablate it:
/// Z-order interleaves bits (weaker clustering, Jagadish SIGMOD'90), and
/// the Gray-coded row-major order is the floor (adjacent ranks differ in
/// one index bit but can be spatially far).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CurveKind {
    /// Z-order / Morton bit interleaving.
    Morton,
    /// Reflected-binary-Gray-coded concatenated index.
    Gray,
}

impl CurveKind {
    /// Method name for reports.
    pub fn method_name(self) -> &'static str {
        match self {
            CurveKind::Morton => "ZCAM",
            CurveKind::Gray => "GrayCAM",
        }
    }
}

/// Curve allocation method over a non-Hilbert order: linearize the grid
/// along the chosen curve, skip points outside the grid, and deal disks
/// round-robin — exactly HCAM's recipe with the curve swapped out.
///
/// Exists to measure how much of HCAM's small-query advantage is the
/// Hilbert curve itself (see `benches/ablation.rs`); [`crate::Hcam`]
/// remains the paper's method.
#[derive(Clone, Debug)]
pub struct CurveAlloc {
    m: u32,
    kind: CurveKind,
    space: GridSpace,
    table: Vec<u32>,
}

impl CurveAlloc {
    /// Materializes the allocation by walking the covering curve once.
    ///
    /// # Errors
    /// [`MethodError::ZeroDisks`] and curve shape errors.
    pub fn new(space: &GridSpace, m: u32, kind: CurveKind) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        let total =
            usize::try_from(space.num_buckets()).map_err(|_| MethodError::UnsupportedGrid {
                method: kind.method_name(),
                reason: "grid too large to materialize".into(),
            })?;
        let mut table = vec![0u32; total];
        let mut rank_in_grid: u64 = 0;
        let mut visit = |point: &[u32]| {
            let inside = point.iter().zip(space.dims()).all(|(&c, &d)| c < d);
            if inside {
                let id = space.linearize_unchecked(point);
                table[id as usize] = (rank_in_grid % u64::from(m)) as u32;
                rank_in_grid += 1;
            }
        };
        match kind {
            CurveKind::Morton => {
                let order = MortonOrder::covering(space.dims())?;
                for rank in 0..order.num_points() {
                    visit(&order.decode(rank).expect("rank in range"));
                }
            }
            CurveKind::Gray => {
                let m_order = MortonOrder::covering(space.dims())?;
                let order = GrayOrder::new(space.k(), m_order.bits())?;
                for rank in 0..order.num_points() {
                    visit(&order.decode(rank).expect("rank in range"));
                }
            }
        }
        debug_assert_eq!(rank_in_grid, space.num_buckets());
        Ok(CurveAlloc {
            m,
            kind,
            space: space.clone(),
            table,
        })
    }

    /// The curve variant in use.
    pub fn kind(&self) -> CurveKind {
        self.kind
    }
}

impl DeclusteringMethod for CurveAlloc {
    fn name(&self) -> &'static str {
        self.kind.method_name()
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        let id = self.space.linearize_unchecked(bucket);
        DiskId(self.table[id as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hcam;
    use decluster_grid::RangeQuery;

    #[test]
    fn both_kinds_balance_loads() {
        for kind in [CurveKind::Morton, CurveKind::Gray] {
            for (dims, m) in [(vec![8u32, 8], 5u32), (vec![6, 10], 4), (vec![4, 4, 4], 7)] {
                let g = GridSpace::new(dims.clone()).unwrap();
                let alloc = CurveAlloc::new(&g, m, kind).unwrap();
                let mut counts = vec![0u64; m as usize];
                for b in g.iter() {
                    counts[alloc.disk_of(b.as_slice()).index()] += 1;
                }
                let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
                assert!(hi - lo <= 1, "{kind:?} {dims:?} m={m}: {counts:?}");
            }
        }
    }

    #[test]
    fn names_distinguish_kinds() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        assert_eq!(
            CurveAlloc::new(&g, 2, CurveKind::Morton).unwrap().name(),
            "ZCAM"
        );
        assert_eq!(
            CurveAlloc::new(&g, 2, CurveKind::Gray).unwrap().name(),
            "GrayCAM"
        );
    }

    #[test]
    fn zero_disks_rejected() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        assert!(CurveAlloc::new(&g, 0, CurveKind::Morton).is_err());
    }

    fn total_rt_2x2(g: &GridSpace, method: &dyn DeclusteringMethod) -> u64 {
        let mut total = 0;
        for r in 0..g.dim(0) - 1 {
            for c in 0..g.dim(1) - 1 {
                let region = RangeQuery::new([r, c], [r + 1, c + 1])
                    .unwrap()
                    .region(g)
                    .unwrap();
                total += crate::one_shot_response_time(method, &region);
            }
        }
        total
    }

    #[test]
    fn hilbert_beats_the_gray_floor_on_small_squares() {
        // HCAM's spatial clustering must beat the Gray-coded order (whose
        // successive ranks can be spatially far apart) on exhaustive 2x2
        // placements.
        let g = GridSpace::new_2d(16, 16).unwrap();
        let m = 8;
        let hcam = Hcam::new(&g, m).unwrap();
        let gray = CurveAlloc::new(&g, m, CurveKind::Gray).unwrap();
        let h = total_rt_2x2(&g, &hcam);
        let gr = total_rt_2x2(&g, &gray);
        assert!(h < gr, "HCAM {h} should beat GrayCAM {gr}");
    }

    #[test]
    fn morton_is_competitive_with_hilbert_for_declustering() {
        // An ablation finding this reproduction surfaced (documented in
        // EXPERIMENTS.md): Z-order's aligned-block structure makes it as
        // good as — here slightly better than — the Hilbert curve for
        // *declustering* on power-of-two grids, even though Hilbert
        // clusters strictly better for storage locality. Pin both facts.
        let g = GridSpace::new_2d(16, 16).unwrap();
        let m = 8;
        let hcam = Hcam::new(&g, m).unwrap();
        let zcam = CurveAlloc::new(&g, m, CurveKind::Morton).unwrap();
        let h = total_rt_2x2(&g, &hcam);
        let z = total_rt_2x2(&g, &zcam);
        // Within 15% of each other, Z-order not worse on this grid.
        assert!(z <= h, "expected ZCAM ({z}) <= HCAM ({h}) here");
        assert!((h as f64) < z as f64 * 1.15, "HCAM {h} vs ZCAM {z}");
    }

    #[test]
    fn non_power_of_two_grids_are_covered_without_gaps() {
        let g = GridSpace::new_2d(5, 7).unwrap();
        let alloc = CurveAlloc::new(&g, 3, CurveKind::Gray).unwrap();
        let mut counts = [0u64; 3];
        for b in g.iter() {
            counts[alloc.disk_of(b.as_slice()).index()] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), 35);
    }
}
