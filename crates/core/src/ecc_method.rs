use crate::{DeclusteringMethod, MethodError, Result};
use decluster_ecc::{BinaryLinearCode, BitMatrix};
use decluster_grid::{DiskId, GridSpace};

/// Error-Correcting-Code (ECC) declustering, Faloutsos & Metaxas (IEEE
/// Transactions on Computers, 1991).
///
/// Requires every `d_i` and `M` to be powers of two. A bucket's
/// coordinates are concatenated into an `n`-bit word
/// (`n = Σ log2(d_i)`); the `M = 2^r` disks are the cosets of an
/// `[n, n−r]` binary linear code, and the bucket's disk is the syndrome of
/// its word under the code's parity-check matrix. Disk 0 holds exactly the
/// codewords — buckets on one disk differ in at least `d_min` coordinate
/// bits, spreading similar buckets across disks.
///
/// The parity-check equations come from a shortened-Hamming construction
/// (`d_min ≥ 3`) when `n ≤ 2^r − 1`, falling back to a full-rank
/// repeated-column construction (`d_min = 2`) for wider words — the
/// programmatic stand-in for the Reza `[20]` code tables the original paper
/// reads equations from (DESIGN.md §4).
#[derive(Clone, Debug)]
pub struct EccDecluster {
    m: u32,
    /// Bits consumed by each dimension (log2 d_i).
    dim_bits: Vec<u32>,
    /// `None` for the trivial single-disk case (`M = 1`).
    code: Option<BinaryLinearCode>,
}

impl EccDecluster {
    /// Creates an ECC instance for `space` over `m` disks.
    ///
    /// # Errors
    /// * [`MethodError::NotPowerOfTwo`] if `m` or any `d_i` is not a power
    ///   of two.
    /// * [`MethodError::UnsupportedGrid`] if the grid has fewer buckets
    ///   than disks (the syndrome map cannot be onto).
    pub fn new(space: &GridSpace, m: u32) -> Result<Self> {
        if m == 0 {
            return Err(MethodError::ZeroDisks);
        }
        if !m.is_power_of_two() {
            return Err(MethodError::NotPowerOfTwo {
                what: "number of disks".into(),
                value: u64::from(m),
            });
        }
        let mut dim_bits = Vec::with_capacity(space.k());
        for (i, &d) in space.dims().iter().enumerate() {
            if !d.is_power_of_two() {
                return Err(MethodError::NotPowerOfTwo {
                    what: format!("partitions on dimension {i}"),
                    value: u64::from(d),
                });
            }
            dim_bits.push(d.trailing_zeros());
        }
        let n: u32 = dim_bits.iter().sum();
        let r = m.trailing_zeros();
        if m == 1 {
            return Ok(EccDecluster {
                m,
                dim_bits,
                code: None,
            });
        }
        if n < r {
            return Err(MethodError::UnsupportedGrid {
                method: "ECC",
                reason: format!("grid has 2^{n} buckets, fewer than M = 2^{r} disks"),
            });
        }
        let h = if u128::from(n) < (1u128 << r) {
            BitMatrix::hamming_parity_check(r, n as usize)?
        } else {
            BitMatrix::cyclic_parity_check(r, n as usize)?
        };
        let code = BinaryLinearCode::from_parity_check(h)?;
        Ok(EccDecluster {
            m,
            dim_bits,
            code: Some(code),
        })
    }

    /// The underlying code, if `M > 1`.
    pub fn code(&self) -> Option<&BinaryLinearCode> {
        self.code.as_ref()
    }

    /// Concatenates a bucket's coordinate bits into the code word
    /// (dimension 0 in the least-significant bits).
    fn word_of(&self, bucket: &[u32]) -> u128 {
        let mut word: u128 = 0;
        let mut shift: u32 = 0;
        for (dim, &c) in bucket.iter().enumerate() {
            word |= u128::from(c) << shift;
            shift += self.dim_bits[dim];
        }
        word
    }
}

impl DeclusteringMethod for EccDecluster {
    fn name(&self) -> &'static str {
        "ECC"
    }

    fn num_disks(&self) -> u32 {
        self.m
    }

    #[inline]
    fn disk_of(&self, bucket: &[u32]) -> DiskId {
        debug_assert_eq!(bucket.len(), self.dim_bits.len());
        match &self.code {
            None => DiskId(0),
            Some(code) => DiskId(code.syndrome(self.word_of(bucket)) as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_non_powers_of_two() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        assert!(matches!(
            EccDecluster::new(&g, 6).unwrap_err(),
            MethodError::NotPowerOfTwo { .. }
        ));
        let g = GridSpace::new_2d(6, 8).unwrap();
        assert!(matches!(
            EccDecluster::new(&g, 4).unwrap_err(),
            MethodError::NotPowerOfTwo { .. }
        ));
        let g = GridSpace::new_2d(8, 8).unwrap();
        assert_eq!(
            EccDecluster::new(&g, 0).unwrap_err(),
            MethodError::ZeroDisks
        );
    }

    #[test]
    fn rejects_more_disks_than_buckets() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        assert!(matches!(
            EccDecluster::new(&g, 32).unwrap_err(),
            MethodError::UnsupportedGrid { method: "ECC", .. }
        ));
    }

    #[test]
    fn single_disk_is_trivial() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ecc = EccDecluster::new(&g, 1).unwrap();
        for b in g.iter() {
            assert_eq!(ecc.disk_of(b.as_slice()), DiskId(0));
        }
    }

    #[test]
    fn disk_zero_holds_exactly_the_codewords() {
        let g = GridSpace::new_2d(8, 8).unwrap(); // n = 6 bits
        let ecc = EccDecluster::new(&g, 8).unwrap(); // r = 3
        let code = ecc.code().unwrap();
        let mut on_disk0 = 0u32;
        for b in g.iter() {
            let word = ecc.word_of(b.as_slice());
            let disk = ecc.disk_of(b.as_slice());
            assert_eq!(disk.0 == 0, code.is_codeword(word));
            if disk.0 == 0 {
                on_disk0 += 1;
            }
        }
        assert_eq!(u128::from(on_disk0), 1u128 << code.dimension());
    }

    #[test]
    fn load_is_perfectly_balanced() {
        // Cosets partition the word space evenly, so every disk gets
        // exactly num_buckets / M buckets.
        for (dims, m) in [
            (vec![8u32, 8], 4u32),
            (vec![16, 16], 16),
            (vec![4, 4, 4], 8),
        ] {
            let g = GridSpace::new(dims).unwrap();
            let ecc = EccDecluster::new(&g, m).unwrap();
            let mut counts = vec![0u64; m as usize];
            for b in g.iter() {
                counts[ecc.disk_of(b.as_slice()).index()] += 1;
            }
            let expected = g.num_buckets() / u64::from(m);
            assert!(counts.iter().all(|&c| c == expected), "{counts:?}");
        }
    }

    #[test]
    fn same_disk_buckets_differ_in_at_least_min_distance_bits() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ecc = EccDecluster::new(&g, 8).unwrap();
        let dmin = ecc.code().unwrap().min_distance().unwrap();
        assert!(dmin >= 3);
        let words: Vec<(u128, u32)> = g
            .iter()
            .map(|b| (ecc.word_of(b.as_slice()), ecc.disk_of(b.as_slice()).0))
            .collect();
        for (i, &(wa, da)) in words.iter().enumerate() {
            for &(wb, db) in &words[i + 1..] {
                if da == db {
                    assert!((wa ^ wb).count_ones() >= dmin);
                }
            }
        }
    }

    #[test]
    fn wide_grid_with_few_disks_uses_fallback_but_stays_balanced() {
        // n = 12 bits, M = 2 (r = 1): Hamming capacity is 1 column, so the
        // cyclic construction kicks in.
        let g = GridSpace::new_2d(64, 64).unwrap();
        let ecc = EccDecluster::new(&g, 2).unwrap();
        let mut counts = [0u64; 2];
        for b in g.iter() {
            counts[ecc.disk_of(b.as_slice()).index()] += 1;
        }
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn word_of_packs_dimension_zero_lowest() {
        let g = GridSpace::new_2d(4, 8).unwrap(); // bits: 2, 3
        let ecc = EccDecluster::new(&g, 2).unwrap();
        assert_eq!(ecc.word_of(&[0b11, 0b101]), 0b1_0111);
    }

    #[test]
    fn asymmetric_dimensions() {
        let g = GridSpace::new(vec![2, 16, 4]).unwrap(); // n = 1+4+2 = 7
        let ecc = EccDecluster::new(&g, 8).unwrap();
        let mut counts = vec![0u64; 8];
        for b in g.iter() {
            counts[ecc.disk_of(b.as_slice()).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 16), "{counts:?}");
    }
}
