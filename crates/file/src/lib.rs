//! A declustered multi-attribute file: the storage-engine face of the
//! workspace.
//!
//! [`DeclusteredFile`] ties the substrates together into the object the
//! paper's parallel database assumes: a [`decluster_grid::GridSchema`]
//! routes records to buckets, a
//! [`decluster_methods::DeclusteringMethod`] assigns buckets to disks,
//! and scans execute bucket-parallel — returning both the matching
//! records and the I/O accounting (`buckets per disk`, response time,
//! optimal bound) that the study measures.
//!
//! # Example
//!
//! ```
//! use decluster_file::DeclusteredFile;
//! use decluster_grid::{AttributeDomain, GridSchema, Record, Value, ValueRangeQuery};
//! use decluster_methods::MethodKind;
//!
//! let schema = GridSchema::uniform(
//!     vec![
//!         AttributeDomain::int("x", 0, 99),
//!         AttributeDomain::int("y", 0, 99),
//!     ],
//!     8,
//! ).unwrap();
//! let mut file = DeclusteredFile::create(schema, MethodKind::Hcam, 4).unwrap();
//! file.insert(Record::new(vec![Value::Int(10), Value::Int(20)])).unwrap();
//! file.insert(Record::new(vec![Value::Int(90), Value::Int(20)])).unwrap();
//!
//! let q = ValueRangeQuery::new(vec![
//!     Some((Value::Int(0), Value::Int(49))),
//!     None,
//! ]).unwrap();
//! let scan = file.scan(&q).unwrap();
//! assert_eq!(scan.records.len(), 1);
//! assert!(scan.io.response_time >= 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod file;
mod io_report;

pub use file::{DeclusteredFile, FileError, FileStats, ScanResult};
pub use io_report::IoReport;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FileError>;
