use crate::{IoReport, Result};
use decluster_grid::{
    BucketRegion, DiskId, GridError, GridSchema, PartialMatchQuery, PointQuery, Record,
    ValueRangeQuery,
};
use decluster_methods::{
    AllocationMap, DeclusteringMethod, MethodError, MethodKind, MethodRegistry,
};
use std::fmt;

/// Errors from declustered-file operations.
#[derive(Debug)]
pub enum FileError {
    /// Record routing / query mapping failed.
    Grid(GridError),
    /// Declustering-method construction failed.
    Method(MethodError),
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileError::Grid(e) => write!(f, "grid error: {e}"),
            FileError::Method(e) => write!(f, "method error: {e}"),
        }
    }
}

impl std::error::Error for FileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FileError::Grid(e) => Some(e),
            FileError::Method(e) => Some(e),
        }
    }
}

impl From<GridError> for FileError {
    fn from(e: GridError) -> Self {
        FileError::Grid(e)
    }
}

impl From<MethodError> for FileError {
    fn from(e: MethodError) -> Self {
        FileError::Method(e)
    }
}

/// The result of a scan: matching records plus the I/O accounting.
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// Records satisfying the query, in bucket order.
    pub records: Vec<Record>,
    /// What the parallel I/O subsystem had to do.
    pub io: IoReport,
}

/// Static statistics of a declustered file.
#[derive(Clone, Debug, PartialEq)]
pub struct FileStats {
    /// Total records stored.
    pub records: u64,
    /// Buckets with at least one record.
    pub occupied_buckets: u64,
    /// Total buckets in the grid.
    pub total_buckets: u64,
    /// Records per disk.
    pub records_per_disk: Vec<u64>,
}

impl FileStats {
    /// Max-over-mean record skew across disks (1.0 = perfectly even).
    pub fn disk_skew(&self) -> f64 {
        let m = self.records_per_disk.len().max(1) as f64;
        let mean = self.records as f64 / m;
        if mean == 0.0 {
            return 1.0;
        }
        let max = self.records_per_disk.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }
}

/// A multi-attribute file declustered over `M` disks: the paper's storage
/// model, usable as a miniature storage engine.
///
/// Records are grouped into grid buckets (schema routing); each bucket
/// lives on exactly one disk (declustering). Scans map a value-level
/// query to its bucket region, read only the touched buckets, filter
/// records against the exact predicate, and report per-disk I/O.
pub struct DeclusteredFile {
    schema: GridSchema,
    allocation: AllocationMap,
    /// Records per linear bucket id.
    buckets: Vec<Vec<Record>>,
    records: u64,
}

impl DeclusteredFile {
    /// Creates an empty file declustered by `kind` over `num_disks`.
    ///
    /// # Errors
    /// Method construction errors (e.g. ECC on a non-power-of-two grid).
    pub fn create(schema: GridSchema, kind: MethodKind, num_disks: u32) -> Result<Self> {
        let method = MethodRegistry::default().build(kind, schema.space(), num_disks)?;
        Self::with_method(schema, method.as_ref())
    }

    /// Creates an empty file declustered by an explicit method instance.
    ///
    /// # Errors
    /// Materialization errors for oversized grids.
    pub fn with_method(schema: GridSchema, method: &dyn DeclusteringMethod) -> Result<Self> {
        let allocation = AllocationMap::from_method(schema.space(), method)?;
        let total = schema.space().num_buckets() as usize;
        Ok(DeclusteredFile {
            schema,
            allocation,
            buckets: vec![Vec::new(); total],
            records: 0,
        })
    }

    /// The file's schema.
    pub fn schema(&self) -> &GridSchema {
        &self.schema
    }

    /// The materialized allocation in use.
    pub fn allocation(&self) -> &AllocationMap {
        &self.allocation
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Inserts a record, returning the disk it landed on.
    ///
    /// # Errors
    /// Routing errors for malformed records.
    pub fn insert(&mut self, record: Record) -> Result<DiskId> {
        let bucket = self.schema.bucket_of(&record)?;
        let id = self
            .schema
            .space()
            .linearize(&bucket)
            .expect("routed bucket is in grid");
        let disk = self.allocation.disk_of(bucket.as_slice());
        self.buckets[id as usize].push(record);
        self.records += 1;
        Ok(disk)
    }

    /// Bulk-inserts records; stops at the first failure, reporting how
    /// many were inserted.
    ///
    /// # Errors
    /// The first routing error, annotated with the successful count via
    /// `Ok(n)` semantics — callers needing partial results should insert
    /// one at a time.
    pub fn bulk_load(&mut self, records: impl IntoIterator<Item = Record>) -> Result<u64> {
        let mut n = 0;
        for record in records {
            self.insert(record)?;
            n += 1;
        }
        Ok(n)
    }

    /// Executes a value-level range query: reads the touched buckets,
    /// filters exactly, and accounts the I/O.
    ///
    /// # Errors
    /// Query-mapping errors (arity, types, inverted ranges).
    pub fn scan(&self, query: &ValueRangeQuery) -> Result<ScanResult> {
        let region = self.schema.region_of(query)?;
        Ok(self.scan_region(&region, |r| Self::matches(query, r)))
    }

    /// Executes a partial-match query at bucket granularity (partition
    /// indices, per the paper's query model).
    ///
    /// # Errors
    /// Query-mapping errors.
    pub fn scan_partial_match(&self, query: &PartialMatchQuery) -> Result<ScanResult> {
        let region = query.region(self.schema.space())?;
        Ok(self.scan_region(&region, |_| true))
    }

    /// Executes a point query at bucket granularity.
    ///
    /// # Errors
    /// Query-mapping errors.
    pub fn scan_point(&self, query: &PointQuery) -> Result<ScanResult> {
        let region = query.region(self.schema.space())?;
        Ok(self.scan_region(&region, |_| true))
    }

    /// Executes a value-level range query and also reports its wall-clock
    /// response time under a physical disk model: the directory is built
    /// from the current allocation (buckets laid out in row-major order
    /// per disk) and every disk reads its touched pages in one elevator
    /// pass — [`decluster_sim::IoSimulator::query_response_ms`] semantics.
    ///
    /// # Errors
    /// Query-mapping errors, as for [`DeclusteredFile::scan`].
    pub fn scan_timed(
        &self,
        query: &ValueRangeQuery,
        io: &decluster_sim::IoSimulator,
    ) -> Result<(ScanResult, f64)> {
        let region = self.schema.region_of(query)?;
        let result = self.scan_region(&region, |r| Self::matches(query, r));
        let dir = decluster_grid::GridDirectory::build(
            self.schema.space().clone(),
            self.allocation.num_disks(),
            |b| self.allocation.disk_of(b.as_slice()),
        );
        let ms = io.query_response_ms(&dir, &region);
        Ok((result, ms))
    }

    /// Executes a value-level range query with one worker thread per
    /// disk, mirroring the parallel I/O subsystem the paper assumes:
    /// every disk filters its own buckets concurrently, and the result is
    /// merged in disk order. Produces exactly the records and I/O report
    /// of [`DeclusteredFile::scan`].
    ///
    /// # Errors
    /// Query-mapping errors, as for `scan`.
    pub fn scan_parallel(&self, query: &ValueRangeQuery) -> Result<ScanResult> {
        let region = self.schema.region_of(query)?;
        let m = self.allocation.num_disks() as usize;
        let space = self.schema.space();
        // Partition the region's bucket ids by disk up front.
        let mut per_disk_ids: Vec<Vec<u64>> = vec![Vec::new(); m];
        for bucket in region.iter() {
            let id = space.linearize_unchecked(bucket.as_slice());
            per_disk_ids[self.allocation.disk_of(bucket.as_slice()).index()].push(id);
        }
        let per_disk_counts: Vec<u64> = per_disk_ids.iter().map(|v| v.len() as u64).collect();
        // One scoped worker per non-idle disk.
        let mut per_disk_records: Vec<Vec<Record>> = Vec::with_capacity(m);
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_disk_ids
                .iter()
                .map(|ids| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for &id in ids {
                            for record in &self.buckets[id as usize] {
                                if Self::matches(query, record) {
                                    out.push(record.clone());
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                per_disk_records.push(handle.join().expect("scan worker never panics"));
            }
        });
        Ok(ScanResult {
            records: per_disk_records.into_iter().flatten().collect(),
            io: IoReport::from_histogram(per_disk_counts),
        })
    }

    /// Reads all buckets of `region`, collecting records that pass
    /// `filter` and accounting per-disk bucket reads.
    fn scan_region(&self, region: &BucketRegion, filter: impl Fn(&Record) -> bool) -> ScanResult {
        let m = self.allocation.num_disks() as usize;
        let mut per_disk = vec![0u64; m];
        let mut records = Vec::new();
        let space = self.schema.space();
        for bucket in region.iter() {
            let id = space.linearize_unchecked(bucket.as_slice());
            per_disk[self.allocation.disk_of(bucket.as_slice()).index()] += 1;
            for record in &self.buckets[id as usize] {
                if filter(record) {
                    records.push(record.clone());
                }
            }
        }
        ScanResult {
            records,
            io: IoReport::from_histogram(per_disk),
        }
    }

    /// Exact record-level predicate for a value range query.
    fn matches(query: &ValueRangeQuery, record: &Record) -> bool {
        query
            .intervals()
            .iter()
            .zip(record.values())
            .all(|(interval, v)| match interval {
                None => true,
                Some((lo, hi)) => {
                    let ge = matches!(
                        lo.partial_cmp_same_type(v),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    );
                    let le = matches!(
                        v.partial_cmp_same_type(hi),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    );
                    ge && le
                }
            })
    }

    /// Re-declusters the file in place with a different method (e.g.
    /// after the advisor saw the real workload), returning how many
    /// records would migrate between disks — the cost a DBA weighs
    /// against the response-time gain.
    ///
    /// Bucket contents never change (the grid is untouched); only the
    /// bucket→disk mapping does, so migration is counted per record whose
    /// bucket changes disks.
    ///
    /// # Errors
    /// Method construction/materialization errors; the file is left
    /// unchanged on error.
    pub fn rebalance(&mut self, method: &dyn DeclusteringMethod) -> Result<u64> {
        let new_allocation = AllocationMap::from_method(self.schema.space(), method)?;
        let mut migrated = 0u64;
        let space = self.schema.space();
        for bucket in space.iter() {
            let id = space.linearize_unchecked(bucket.as_slice());
            if self.allocation.disk_of(bucket.as_slice())
                != new_allocation.disk_of(bucket.as_slice())
            {
                migrated += self.buckets[id as usize].len() as u64;
            }
        }
        self.allocation = new_allocation;
        Ok(migrated)
    }

    /// Static statistics: occupancy and per-disk record counts.
    pub fn stats(&self) -> FileStats {
        let m = self.allocation.num_disks() as usize;
        let mut records_per_disk = vec![0u64; m];
        let mut occupied = 0u64;
        let space = self.schema.space();
        for bucket in space.iter() {
            let id = space.linearize_unchecked(bucket.as_slice());
            let n = self.buckets[id as usize].len() as u64;
            if n > 0 {
                occupied += 1;
                records_per_disk[self.allocation.disk_of(bucket.as_slice()).index()] += n;
            }
        }
        FileStats {
            records: self.records,
            occupied_buckets: occupied,
            total_buckets: space.num_buckets(),
            records_per_disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::{AttributeDomain, Value};

    fn schema() -> GridSchema {
        GridSchema::uniform(
            vec![
                AttributeDomain::int("x", 0, 99),
                AttributeDomain::int("y", 0, 99),
            ],
            10,
        )
        .unwrap()
    }

    fn loaded_file(kind: MethodKind) -> DeclusteredFile {
        let mut f = DeclusteredFile::create(schema(), kind, 5).unwrap();
        // One record at every (x, y) multiple of 10 => one per bucket.
        for x in (0..100).step_by(10) {
            for y in (0..100).step_by(10) {
                f.insert(Record::new(vec![Value::Int(x), Value::Int(y)]))
                    .unwrap();
            }
        }
        f
    }

    #[test]
    fn create_insert_len() {
        let mut f = DeclusteredFile::create(schema(), MethodKind::Dm, 4).unwrap();
        assert!(f.is_empty());
        let disk = f
            .insert(Record::new(vec![Value::Int(15), Value::Int(25)]))
            .unwrap();
        // Bucket <1,2> under DM with M=4: disk (1+2)%4 = 3.
        assert_eq!(disk, DiskId(3));
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn insert_rejects_malformed_records() {
        let mut f = DeclusteredFile::create(schema(), MethodKind::Dm, 4).unwrap();
        assert!(f.insert(Record::new(vec![Value::Int(1)])).is_err());
        assert!(f
            .insert(Record::new(vec![Value::Int(1), Value::Int(200)]))
            .is_err());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn scan_returns_exactly_the_matching_records() {
        let f = loaded_file(MethodKind::Hcam);
        // x in [0, 49], y in [20, 39]: x in {0,10,20,30,40}, y in {20,30}.
        let q = ValueRangeQuery::new(vec![
            Some((Value::Int(0), Value::Int(49))),
            Some((Value::Int(20), Value::Int(39))),
        ])
        .unwrap();
        let scan = f.scan(&q).unwrap();
        assert_eq!(scan.records.len(), 10);
        for r in &scan.records {
            let (Value::Int(x), Value::Int(y)) = (r.value(0), r.value(1)) else {
                panic!("wrong types");
            };
            assert!((0..=49).contains(x) && (20..=39).contains(y));
        }
        // I/O accounting: 5x2 partitions = 10 buckets.
        assert_eq!(scan.io.buckets_touched, 10);
        assert!(scan.io.response_time >= scan.io.optimal);
    }

    #[test]
    fn scan_filters_at_record_granularity() {
        // Two records in the same bucket, only one matching.
        let mut f = DeclusteredFile::create(schema(), MethodKind::Dm, 4).unwrap();
        f.insert(Record::new(vec![Value::Int(11), Value::Int(11)]))
            .unwrap();
        f.insert(Record::new(vec![Value::Int(19), Value::Int(11)]))
            .unwrap();
        let q = ValueRangeQuery::new(vec![Some((Value::Int(10), Value::Int(15))), None]).unwrap();
        let scan = f.scan(&q).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].value(0), &Value::Int(11));
    }

    #[test]
    fn partial_match_and_point_scans() {
        let f = loaded_file(MethodKind::Dm);
        let pm = PartialMatchQuery::new(vec![Some(3), None]).unwrap();
        let scan = f.scan_partial_match(&pm).unwrap();
        assert_eq!(scan.records.len(), 10); // one row of buckets
        assert_eq!(scan.io.buckets_touched, 10);
        // DM is optimal for one-unspecified PM queries: 10 buckets over 5
        // disks, response 2.
        assert_eq!(scan.io.response_time, 2);
        assert_eq!(scan.io.deviation_factor(), 1.0);

        let pt = PointQuery::new([3, 4]);
        let scan = f.scan_point(&pt).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.io.response_time, 1);
    }

    #[test]
    fn bulk_load_counts() {
        let mut f = DeclusteredFile::create(schema(), MethodKind::Fx, 4).unwrap();
        let n = f
            .bulk_load((0..50).map(|i| Record::new(vec![Value::Int(i), Value::Int(i)])))
            .unwrap();
        assert_eq!(n, 50);
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn stats_reflect_contents() {
        let f = loaded_file(MethodKind::Hcam);
        let stats = f.stats();
        assert_eq!(stats.records, 100);
        assert_eq!(stats.occupied_buckets, 100);
        assert_eq!(stats.total_buckets, 100);
        assert_eq!(stats.records_per_disk.iter().sum::<u64>(), 100);
        // HCAM balances buckets evenly: skew == 1.0 on this uniform load.
        assert_eq!(stats.disk_skew(), 1.0);
    }

    #[test]
    fn empty_file_scan() {
        let f = DeclusteredFile::create(schema(), MethodKind::Dm, 4).unwrap();
        let q = ValueRangeQuery::new(vec![None, None]).unwrap();
        let scan = f.scan(&q).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.io.buckets_touched, 100); // still reads the region
        assert_eq!(f.stats().disk_skew(), 1.0);
    }

    #[test]
    fn scan_query_errors_propagate() {
        let f = loaded_file(MethodKind::Dm);
        let bad_arity = ValueRangeQuery::new(vec![None]).unwrap();
        assert!(f.scan(&bad_arity).is_err());
        let inverted =
            ValueRangeQuery::new(vec![Some((Value::Int(50), Value::Int(10))), None]).unwrap();
        assert!(f.scan(&inverted).is_err());
    }

    #[test]
    fn timed_scan_agrees_with_plain_scan_and_times_positively() {
        let f = loaded_file(MethodKind::Fx);
        let io = decluster_sim::IoSimulator::default();
        let q = ValueRangeQuery::new(vec![Some((Value::Int(0), Value::Int(49))), None]).unwrap();
        let (scan, ms) = f.scan_timed(&q, &io).unwrap();
        let plain = f.scan(&q).unwrap();
        assert_eq!(scan.io, plain.io);
        assert_eq!(scan.records.len(), plain.records.len());
        assert!(ms > 0.0);
        // A bigger query costs at least as much wall-clock.
        let big = ValueRangeQuery::new(vec![None, None]).unwrap();
        let (_, big_ms) = f.scan_timed(&big, &io).unwrap();
        assert!(big_ms >= ms);
    }

    #[test]
    fn parallel_scan_matches_sequential_scan() {
        let f = loaded_file(MethodKind::Hcam);
        let q = ValueRangeQuery::new(vec![
            Some((Value::Int(0), Value::Int(69))),
            Some((Value::Int(20), Value::Int(99))),
        ])
        .unwrap();
        let seq = f.scan(&q).unwrap();
        let par = f.scan_parallel(&q).unwrap();
        assert_eq!(seq.io, par.io);
        let key = |r: &Record| {
            let (Value::Int(x), Value::Int(y)) = (r.value(0).clone(), r.value(1).clone()) else {
                panic!("typed")
            };
            (x, y)
        };
        let mut a = seq.records;
        let mut b = par.records;
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_scan_on_empty_file_and_errors() {
        let f = DeclusteredFile::create(schema(), MethodKind::Dm, 4).unwrap();
        let q = ValueRangeQuery::new(vec![None, None]).unwrap();
        let scan = f.scan_parallel(&q).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.io.buckets_touched, 100);
        assert!(f
            .scan_parallel(&ValueRangeQuery::new(vec![None]).unwrap())
            .is_err());
    }

    #[test]
    fn rebalance_counts_migrations_and_switches_allocation() {
        use decluster_methods::{DiskModulo, Hcam};
        let mut f = loaded_file(MethodKind::Dm);
        let space = f.schema().space().clone();
        // Rebalancing to the same method moves nothing.
        let dm = DiskModulo::new(&space, 5).unwrap();
        assert_eq!(f.rebalance(&dm).unwrap(), 0);
        // Switching to HCAM moves some (but not all) records.
        let hcam = Hcam::new(&space, 5).unwrap();
        let moved = f.rebalance(&hcam).unwrap();
        assert!(moved > 0 && moved < f.len());
        // Scans now follow the new allocation: a one-unspecified PM query
        // under HCAM is typically not optimal.
        let pm = PartialMatchQuery::new(vec![Some(3), None]).unwrap();
        let scan = f.scan_partial_match(&pm).unwrap();
        assert_eq!(scan.records.len(), 10);
        // And the allocation's name reflects the switch.
        assert_eq!(f.allocation().name(), "HCAM");
    }

    #[test]
    fn rebalance_respects_record_weights() {
        // Put many records in one bucket; migration count is per record.
        let mut f = DeclusteredFile::create(schema(), MethodKind::Dm, 5).unwrap();
        for _ in 0..7 {
            f.insert(Record::new(vec![Value::Int(15), Value::Int(25)]))
                .unwrap();
        }
        let space = f.schema().space().clone();
        // An allocation differing only on that bucket's disk.
        let before = f.allocation().disk_of(&[1, 2]);
        let flipped = decluster_methods::RandomAlloc::new(&space, 5, 99).unwrap();
        let moved = f.rebalance(&flipped).unwrap();
        let after = f.allocation().disk_of(&[1, 2]);
        if before == after {
            assert_eq!(moved, 0);
        } else {
            assert_eq!(moved, 7);
        }
    }

    #[test]
    fn every_method_kind_backs_a_file() {
        for kind in [
            MethodKind::Dm,
            MethodKind::Bdm,
            MethodKind::Fx,
            MethodKind::Hcam,
            MethodKind::Zcam,
            MethodKind::GrayCam,
            MethodKind::RoundRobin,
            MethodKind::Random,
        ] {
            let f = DeclusteredFile::create(schema(), kind, 5).unwrap();
            assert_eq!(f.allocation().num_disks(), 5);
        }
        // ECC needs power-of-two partitions: 10 is not.
        assert!(DeclusteredFile::create(schema(), MethodKind::Ecc, 4).is_err());
    }
}
