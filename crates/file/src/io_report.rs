use decluster_grid::DiskId;

/// I/O accounting of one scan: what each disk had to read and how the
/// parallel subsystem's response time compares to the optimum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoReport {
    /// Buckets read per disk.
    pub buckets_per_disk: Vec<u64>,
    /// Total buckets the query touched (`|Q|`).
    pub buckets_touched: u64,
    /// Response time in bucket retrievals (`max` of `buckets_per_disk`).
    pub response_time: u64,
    /// The lower bound `ceil(|Q| / M)`.
    pub optimal: u64,
}

impl IoReport {
    /// Builds a report from the per-disk histogram.
    pub fn from_histogram(buckets_per_disk: Vec<u64>) -> Self {
        let buckets_touched: u64 = buckets_per_disk.iter().sum();
        let response_time = buckets_per_disk.iter().copied().max().unwrap_or(0);
        let m = buckets_per_disk.len().max(1) as u64;
        IoReport {
            buckets_per_disk,
            buckets_touched,
            response_time,
            optimal: buckets_touched.div_ceil(m),
        }
    }

    /// Number of disks that participated (read at least one bucket).
    pub fn disks_used(&self) -> usize {
        self.buckets_per_disk.iter().filter(|&&n| n > 0).count()
    }

    /// The busiest disk.
    pub fn bottleneck(&self) -> Option<DiskId> {
        let (idx, &max) = self
            .buckets_per_disk
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| n)?;
        (max > 0).then_some(DiskId(idx as u32))
    }

    /// `response_time / optimal` as a float; 1.0 means the scan was
    /// perfectly parallel.
    pub fn deviation_factor(&self) -> f64 {
        if self.optimal == 0 {
            1.0
        } else {
            self.response_time as f64 / self.optimal as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_histogram_computes_all_fields() {
        let r = IoReport::from_histogram(vec![2, 0, 3, 1]);
        assert_eq!(r.buckets_touched, 6);
        assert_eq!(r.response_time, 3);
        assert_eq!(r.optimal, 2);
        assert_eq!(r.disks_used(), 3);
        assert_eq!(r.bottleneck(), Some(DiskId(2)));
        assert_eq!(r.deviation_factor(), 1.5);
    }

    #[test]
    fn empty_scan_report() {
        let r = IoReport::from_histogram(vec![0, 0]);
        assert_eq!(r.response_time, 0);
        assert_eq!(r.optimal, 0);
        assert_eq!(r.disks_used(), 0);
        assert_eq!(r.bottleneck(), None);
        assert_eq!(r.deviation_factor(), 1.0);
    }

    #[test]
    fn perfectly_spread_scan() {
        let r = IoReport::from_histogram(vec![2, 2, 2, 2]);
        assert_eq!(r.deviation_factor(), 1.0);
        assert_eq!(r.disks_used(), 4);
    }
}
