//! Optimality theory for grid declustering.
//!
//! The paper's theoretical contribution is an impossibility result: **no
//! declustering method is strictly optimal for range queries when the
//! number of disks exceeds 5.** This crate reproduces that result
//! computationally and collects the partial-match optimality conditions
//! the paper tabulates:
//!
//! * [`strict`] — a verifier that checks an allocation against *every*
//!   range query on its grid (`RT(Q) = ceil(|Q|/M)` for all `Q`), plus the
//!   known strictly optimal lattice allocations for `M ∈ {1, 2, 3, 5}`.
//! * [`search`] — an exhaustive constraint-propagation search over all
//!   allocations of a 2-D window. If the search exhausts without finding a
//!   strictly optimal allocation of an `R × C` window, none exists for any
//!   grid containing that window — which is exactly how
//!   [`impossibility`] demonstrates the paper's theorem for `M = 6, 7, 8`
//!   (and, beyond the paper, for `M = 4`).
//! * [`partial_match`] — the paper's Table 1: per-method conditions under
//!   which partial-match queries are provably optimal, as executable
//!   predicates with empirical cross-checks.
//!
//! # Example
//!
//! ```
//! use decluster_grid::GridSpace;
//! use decluster_theory::{search::{SearchOutcome, StrictSearch}, strict};
//!
//! // M = 5 admits a strictly optimal allocation (the (i + 2j) mod 5 lattice)…
//! let space = GridSpace::new_2d(10, 10).unwrap();
//! let alloc = strict::known_strict_allocation(&space, 5).unwrap();
//! assert!(strict::verify_strictly_optimal(&alloc).is_ok());
//!
//! // …while M = 6 provably does not (the paper's theorem): exhausting the
//! // search on a 7×7 window proves it for every grid at least that large.
//! let outcome = StrictSearch::new(7, 7, 6).with_node_budget(2_000_000).run();
//! assert_eq!(outcome, SearchOutcome::Unsatisfiable);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod closed_form;
pub mod impossibility;
pub mod partial_match;
pub mod search;
pub mod search_kd;
pub mod strict;
