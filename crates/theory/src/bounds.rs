//! Exact (non-sampled) response-time analysis over all placements of a
//! query shape.
//!
//! The experiment harness estimates mean response times from random
//! placements; this module computes the exact placement statistics by
//! enumeration — worst case, best case, exact mean, and the fraction of
//! placements where the method is optimal. Used to validate the sampled
//! experiments and to state per-method guarantees ("DM never exceeds 2×
//! optimal on this shape").

use decluster_grid::{BucketCoord, BucketRegion};
use decluster_methods::{AllocationMap, DeclusteringMethod};

/// Exact placement statistics of one query shape under one allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct ShapeProfile {
    /// The shape analyzed (per-dimension extents).
    pub shape: Vec<u32>,
    /// Number of distinct placements enumerated.
    pub placements: u64,
    /// Minimum response time over all placements.
    pub best: u64,
    /// Maximum response time over all placements.
    pub worst: u64,
    /// A placement achieving `worst`.
    pub worst_witness: BucketRegion,
    /// Exact mean response time over all placements.
    pub mean: f64,
    /// The optimal bound `ceil(|shape|/M)` (identical for every placement).
    pub optimal: u64,
    /// Fraction of placements whose response time equals the bound.
    pub optimal_fraction: f64,
}

impl ShapeProfile {
    /// `worst / optimal` — the shape's worst-case deviation factor.
    pub fn worst_factor(&self) -> f64 {
        self.worst as f64 / self.optimal.max(1) as f64
    }
}

/// Whether `shape` is a legal query shape for `space`.
fn shape_fits(space: &decluster_grid::GridSpace, shape: &[u32]) -> bool {
    shape.len() == space.k()
        && shape
            .iter()
            .zip(space.dims())
            .all(|(&s, &d)| s > 0 && s <= d)
}

/// Calls `f` with every placement of `shape` inside `space`, in
/// row-major offset order. The caller must have validated the shape
/// with [`shape_fits`].
fn for_each_placement(
    space: &decluster_grid::GridSpace,
    shape: &[u32],
    mut f: impl FnMut(BucketRegion),
) {
    let mut offset = vec![0u32; space.k()];
    loop {
        let lo = BucketCoord::from(offset.clone());
        let hi = BucketCoord::from(
            offset
                .iter()
                .zip(shape)
                .map(|(&o, &s)| o + s - 1)
                .collect::<Vec<u32>>(),
        );
        f(BucketRegion::new(space, lo, hi).expect("placement fits"));
        // Advance the offset over all valid placements.
        let mut dim = space.k();
        let advanced = loop {
            if dim == 0 {
                break false;
            }
            dim -= 1;
            offset[dim] += 1;
            if offset[dim] + shape[dim] <= space.dim(dim) {
                break true;
            }
            offset[dim] = 0;
        };
        if !advanced {
            return;
        }
    }
}

/// Enumerates every placement of `shape` inside the allocation's grid and
/// returns the exact statistics. Returns `None` if the shape does not fit
/// the grid (or is malformed).
///
/// Enumeration is the theory crate's hot loop — placements × query area
/// bucket visits under the naive metric — so each response time is read
/// from the [`decluster_methods::DiskCounts`] prefix-sum kernel
/// (`O(M · 2^k)` per placement) when the grid admits one, falling back
/// to the per-bucket walk when it does not.
pub fn shape_profile(alloc: &AllocationMap, shape: &[u32]) -> Option<ShapeProfile> {
    let space = alloc.space().clone();
    if !shape_fits(&space, shape) {
        return None;
    }
    let volume: u64 = shape.iter().map(|&s| u64::from(s)).product();
    let optimal = volume.div_ceil(u64::from(alloc.num_disks()));
    let kernel = alloc.disk_counts().ok();
    // Every placement shares one shape, so the kernel's scratch compiles
    // the 2^k corner plan exactly once and re-uses it for the whole
    // enumeration.
    let mut scratch = decluster_methods::Scratch::new();

    let mut best = u64::MAX;
    let mut worst = 0u64;
    let mut worst_witness: Option<BucketRegion> = None;
    let mut total: u128 = 0;
    let mut placements = 0u64;
    let mut optimal_hits = 0u64;

    for_each_placement(&space, shape, |region| {
        let rt = match &kernel {
            Some(k) => k.response_time_with(&region, &mut scratch),
            None => alloc.response_time_with(&region, &mut scratch),
        };
        total += u128::from(rt);
        placements += 1;
        if rt == optimal {
            optimal_hits += 1;
        }
        if rt < best {
            best = rt;
        }
        if rt > worst {
            worst = rt;
            worst_witness = Some(region);
        }
    });

    Some(ShapeProfile {
        shape: shape.to_vec(),
        placements,
        best,
        worst,
        worst_witness: worst_witness.expect("at least one placement"),
        mean: total as f64 / placements as f64,
        optimal,
        optimal_fraction: optimal_hits as f64 / placements as f64,
    })
}

/// The worst response time of `shape` anywhere in the grid, with a
/// witness placement. Convenience wrapper over [`shape_profile`].
pub fn worst_case_response_time(
    alloc: &AllocationMap,
    shape: &[u32],
) -> Option<(u64, BucketRegion)> {
    shape_profile(alloc, shape).map(|p| (p.worst, p.worst_witness))
}

/// Fraction of `shape` placements that touch **no** bucket of
/// `failed_disk` — the queries that remain fully answerable if that disk
/// fails (no replication, per the paper's model).
///
/// This is the flip side of response time: a method that spreads every
/// query across many disks (low RT) also exposes every query to every
/// disk's failure (low survival). Enumerated exactly over all
/// placements; returns `None` if the shape does not fit the grid or the
/// disk id is out of range.
pub fn failure_survival_fraction(
    alloc: &AllocationMap,
    shape: &[u32],
    failed_disk: decluster_grid::DiskId,
) -> Option<f64> {
    if failed_disk.0 >= alloc.num_disks() {
        return None;
    }
    let space = alloc.space().clone();
    if !shape_fits(&space, shape) {
        return None;
    }
    // Only the failed disk's count matters, so the kernel answers each
    // placement in 2^k lookups instead of a full-region walk.
    let kernel = alloc.disk_counts().ok();
    let mut scratch = decluster_methods::Scratch::new();
    let mut survivors = 0u64;
    let mut placements = 0u64;
    for_each_placement(&space, shape, |region| {
        placements += 1;
        let touched = match &kernel {
            Some(k) => k.count_on_disk_with(&region, failed_disk.0, &mut scratch),
            None => alloc.access_histogram(&region)[failed_disk.index()],
        };
        if touched == 0 {
            survivors += 1;
        }
    });
    Some(survivors as f64 / placements as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strict::known_strict_allocation;
    use decluster_grid::GridSpace;
    use decluster_methods::{DiskModulo, FieldwiseXor, Hcam};

    fn alloc_of(space: &GridSpace, method: &dyn DeclusteringMethod) -> AllocationMap {
        AllocationMap::from_method(space, method).unwrap()
    }

    #[test]
    fn strictly_optimal_lattice_has_fraction_one() {
        let space = GridSpace::new_2d(10, 10).unwrap();
        let alloc = known_strict_allocation(&space, 5).unwrap();
        for shape in [[1u32, 5], [2, 2], [3, 4], [5, 5]] {
            let p = shape_profile(&alloc, &shape).unwrap();
            assert_eq!(p.optimal_fraction, 1.0, "{shape:?}");
            assert_eq!(p.best, p.worst);
            assert_eq!(p.worst, p.optimal);
            assert_eq!(p.worst_factor(), 1.0);
        }
    }

    #[test]
    fn dm_worst_case_on_squares_is_the_diagonal() {
        // DM with M >= 2s-1 on an s x s square: the anti-diagonal puts s
        // buckets on one disk; with M >= s^2 the optimum is 1, so the
        // worst factor is exactly s.
        let space = GridSpace::new_2d(16, 16).unwrap();
        let alloc = alloc_of(&space, &DiskModulo::new(&space, 16).unwrap());
        let p = shape_profile(&alloc, &[4, 4]).unwrap();
        assert_eq!(p.optimal, 1);
        assert_eq!(p.worst, 4);
        assert_eq!(p.best, 4); // every placement has a full anti-diagonal
        assert_eq!(p.worst_factor(), 4.0);
        // The witness must actually achieve the worst RT.
        assert_eq!(alloc.response_time(&p.worst_witness), 4);
    }

    #[test]
    fn placement_count_is_exact() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let alloc = alloc_of(&space, &DiskModulo::new(&space, 4).unwrap());
        let p = shape_profile(&alloc, &[3, 5]).unwrap();
        assert_eq!(p.placements, 6 * 4);
    }

    #[test]
    fn mean_is_between_best_and_worst() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        for method in [
            &alloc_of(&space, &FieldwiseXor::new(&space, 8).unwrap()),
            &alloc_of(&space, &Hcam::new(&space, 8).unwrap()),
        ] {
            let p = shape_profile(method, &[3, 3]).unwrap();
            assert!(p.best as f64 <= p.mean && p.mean <= p.worst as f64);
            assert!(p.optimal_fraction >= 0.0 && p.optimal_fraction <= 1.0);
            assert!(p.best >= p.optimal);
        }
    }

    #[test]
    fn rejects_shapes_that_do_not_fit() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let alloc = alloc_of(&space, &DiskModulo::new(&space, 4).unwrap());
        assert!(shape_profile(&alloc, &[9, 1]).is_none());
        assert!(shape_profile(&alloc, &[0, 1]).is_none());
        assert!(shape_profile(&alloc, &[1]).is_none());
    }

    #[test]
    fn full_grid_shape_has_one_placement() {
        let space = GridSpace::new_2d(6, 6).unwrap();
        let alloc = alloc_of(&space, &DiskModulo::new(&space, 3).unwrap());
        let p = shape_profile(&alloc, &[6, 6]).unwrap();
        assert_eq!(p.placements, 1);
        assert_eq!(p.best, p.worst);
        assert_eq!(p.optimal, 12);
        assert_eq!(p.worst, 12); // 6x6 with M=3 and d%M=0: perfectly even
    }

    #[test]
    fn works_in_three_dimensions() {
        let space = GridSpace::new_cube(3, 4).unwrap();
        let alloc = alloc_of(&space, &DiskModulo::new(&space, 4).unwrap());
        let p = shape_profile(&alloc, &[2, 2, 2]).unwrap();
        assert_eq!(p.placements, 27);
        assert!(p.worst >= p.optimal);
    }

    #[test]
    fn survival_tradeoff_spreading_hurts_availability() {
        use decluster_grid::DiskId;
        // DM concentrates a 2x2 query on at most 3 disks; HCAM spreads it
        // over 4. More spread = lower chance a given disk is avoided.
        let space = GridSpace::new_2d(16, 16).unwrap();
        let m = 8;
        let dm = alloc_of(&space, &DiskModulo::new(&space, m).unwrap());
        let hcam = alloc_of(&space, &Hcam::new(&space, m).unwrap());
        let shape = [2u32, 2];
        let avg = |alloc: &AllocationMap| -> f64 {
            (0..m)
                .map(|d| failure_survival_fraction(alloc, &shape, DiskId(d)).unwrap())
                .sum::<f64>()
                / f64::from(m)
        };
        let dm_survival = avg(&dm);
        let hcam_survival = avg(&hcam);
        assert!(
            dm_survival > hcam_survival,
            "DM survival {dm_survival:.3} should exceed HCAM {hcam_survival:.3}"
        );
        // Exact relationship: average over disks of (1 - survival) equals
        // the mean number of distinct disks touched / M.
        // Sanity bound: survival fractions live in [0, 1].
        for s in [dm_survival, hcam_survival] {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn survival_validates_inputs() {
        use decluster_grid::DiskId;
        let space = GridSpace::new_2d(8, 8).unwrap();
        let alloc = alloc_of(&space, &DiskModulo::new(&space, 4).unwrap());
        assert!(failure_survival_fraction(&alloc, &[2, 2], DiskId(4)).is_none());
        assert!(failure_survival_fraction(&alloc, &[9, 1], DiskId(0)).is_none());
        assert!(failure_survival_fraction(&alloc, &[2], DiskId(0)).is_none());
        // The full grid touches every disk of a balanced allocation:
        // survival 0 for all disks.
        assert_eq!(
            failure_survival_fraction(&alloc, &[8, 8], DiskId(0)),
            Some(0.0)
        );
    }

    #[test]
    fn worst_case_wrapper_matches_profile() {
        let space = GridSpace::new_2d(12, 12).unwrap();
        let alloc = alloc_of(&space, &Hcam::new(&space, 6).unwrap());
        let (worst, witness) = worst_case_response_time(&alloc, &[2, 3]).unwrap();
        let p = shape_profile(&alloc, &[2, 3]).unwrap();
        assert_eq!(worst, p.worst);
        assert_eq!(alloc.response_time(&witness), worst);
    }
}
