//! The paper's theorem, demonstrated computationally.
//!
//! *"There exists no declustering method that is strictly optimal for
//! range queries if the number of disks is more than 5."*
//!
//! The demonstration: run the exhaustive [`crate::search`] on a window.
//! An [`SearchOutcome::Unsatisfiable`] exhaustion on an `R × C` window is
//! a machine-checked proof that no allocation of any grid containing the
//! window is strictly optimal — every allocation restricted to the window
//! would have to be strictly optimal there. Conversely a
//! [`SearchOutcome::Satisfiable`] result exhibits the allocation.

use crate::search::{SearchOutcome, SearchStats, StrictSearch};

/// The verdict for one disk count.
#[derive(Clone, Debug, PartialEq)]
pub struct Demonstration {
    /// Number of disks examined.
    pub m: u32,
    /// Window dimensions the search ran on.
    pub window: (u32, u32),
    /// The search outcome (SAT = strictly optimal allocation exists for
    /// this window; UNSAT = impossible for every grid ≥ window).
    pub outcome: SearchOutcome,
    /// Search statistics.
    pub stats: SearchStats,
}

impl Demonstration {
    /// One line of the theorem table.
    pub fn summary(&self) -> String {
        let verdict = match &self.outcome {
            SearchOutcome::Satisfiable(_) => "strictly optimal allocation EXISTS",
            SearchOutcome::Unsatisfiable => "IMPOSSIBLE (search exhausted)",
            SearchOutcome::Unknown => "inconclusive (budget exhausted)",
        };
        format!(
            "M = {:>2} on {}x{} window: {} [{} nodes, {} prunes]",
            self.m, self.window.0, self.window.1, verdict, self.stats.nodes, self.stats.prunes
        )
    }
}

/// The window size used to decide disk count `m`.
///
/// Found empirically (see the crate tests): a `(m+1) × (m+1)` window is
/// decisive for every `m ≤ 8` within a modest node budget, while keeping
/// SAT cases fast.
pub fn decisive_window(m: u32) -> (u32, u32) {
    (m + 1, m + 1)
}

/// Runs the demonstration for one disk count.
pub fn demonstrate(m: u32, node_budget: u64) -> Demonstration {
    let (rows, cols) = decisive_window(m);
    let (outcome, stats) = StrictSearch::new(rows, cols, m)
        .with_node_budget(node_budget)
        .run_with_stats();
    Demonstration {
        m,
        window: (rows, cols),
        outcome,
        stats,
    }
}

/// Runs the demonstration for every `m` in `1..=max_m` (the paper's
/// theorem reproduced as a table).
pub fn theorem_table(max_m: u32, node_budget: u64) -> Vec<Demonstration> {
    (1..=max_m).map(|m| demonstrate(m, node_budget)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn existence_for_1_2_3_5() {
        for m in [1u32, 2, 3, 5] {
            let d = demonstrate(m, 50_000_000);
            assert!(d.outcome.is_sat(), "{}", d.summary());
        }
    }

    #[test]
    fn impossibility_for_4_and_6() {
        // M = 4 (beyond the paper's claim) and M = 6 (the theorem's first
        // case) are both UNSAT on their decisive windows.
        for m in [4u32, 6] {
            let d = demonstrate(m, 200_000_000);
            assert_eq!(d.outcome, SearchOutcome::Unsatisfiable, "{}", d.summary());
        }
    }

    #[test]
    fn summary_mentions_the_verdict() {
        let d = demonstrate(2, 1_000_000);
        assert!(d.summary().contains("EXISTS"));
    }
}
