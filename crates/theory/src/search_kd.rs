//! k-dimensional generalization of the strict-optimality search.
//!
//! The 2-D search ([`crate::search`]) settles the paper's theorem, and a
//! slice argument extends it upward for free: any axis-aligned 2-D
//! rectangle of a k-D grid is itself a range query (fix the other
//! coordinates), so a strictly optimal k-D allocation restricts to a
//! strictly optimal 2-D one — 2-D impossibility implies k-D
//! impossibility. This module makes the k-D statement *directly*
//! checkable anyway: the same monotone constraint ("no disk exceeds
//! `ceil(volume/M)` in any box") searched over k-D windows, used by tests
//! to confirm the slice argument computationally and to find strictly
//! optimal 3-D allocations where they exist.

use decluster_grid::GridSpace;
use decluster_methods::AllocationMap;

pub use crate::search::SearchOutcome;
use crate::search::SearchStats;

/// Exhaustive search for a strictly optimal allocation of a k-D window.
#[derive(Clone, Debug)]
pub struct StrictSearchKd {
    dims: Vec<u32>,
    m: u32,
    node_budget: u64,
}

impl StrictSearchKd {
    /// A search over the `dims` window with `m` disks (default budget 10M
    /// nodes).
    pub fn new(dims: Vec<u32>, m: u32) -> Self {
        let dims = if dims.is_empty() { vec![1] } else { dims };
        StrictSearchKd {
            dims: dims.into_iter().map(|d| d.max(1)).collect(),
            m: m.max(1),
            node_budget: 10_000_000,
        }
    }

    /// Caps the number of decision nodes.
    pub fn with_node_budget(mut self, budget: u64) -> Self {
        self.node_budget = budget;
        self
    }

    /// Runs the search.
    pub fn run(&self) -> SearchOutcome {
        self.run_with_stats().0
    }

    /// Runs the search, reporting node/prune counts.
    pub fn run_with_stats(&self) -> (SearchOutcome, SearchStats) {
        let space = GridSpace::new(self.dims.clone()).expect("dims validated");
        let total = space.num_buckets() as usize;
        let mut grid = vec![u32::MAX; total];
        let mut stats = SearchStats::default();
        let done = self.dfs(&space, &mut grid, 0, 0, &mut stats);
        let outcome = match done {
            Dfs::Found => SearchOutcome::Satisfiable(
                AllocationMap::from_table(&space, self.m, grid)
                    .expect("search grid complete and in range"),
            ),
            Dfs::Exhausted => SearchOutcome::Unsatisfiable,
            Dfs::BudgetExceeded => SearchOutcome::Unknown,
        };
        (outcome, stats)
    }

    fn dfs(
        &self,
        space: &GridSpace,
        grid: &mut [u32],
        cell: usize,
        max_used: u32,
        stats: &mut SearchStats,
    ) -> Dfs {
        if cell == grid.len() {
            return Dfs::Found;
        }
        if stats.nodes >= self.node_budget {
            return Dfs::BudgetExceeded;
        }
        stats.nodes += 1;
        let coord = space
            .delinearize(cell as u64)
            .expect("cell index within grid");
        // Disk-relabelling symmetry breaking (sound: labels interchangeable).
        let candidates = self.m.min(max_used + 1);
        for disk in 0..candidates {
            grid[cell] = disk;
            if self.placement_ok(space, grid, coord.as_slice()) {
                match self.dfs(space, grid, cell + 1, max_used.max(disk + 1), stats) {
                    Dfs::Found => return Dfs::Found,
                    Dfs::BudgetExceeded => {
                        grid[cell] = u32::MAX;
                        return Dfs::BudgetExceeded;
                    }
                    Dfs::Exhausted => {}
                }
            } else {
                stats.prunes += 1;
            }
        }
        grid[cell] = u32::MAX;
        Dfs::Exhausted
    }

    /// Checks every box whose maximum corner is `cur`: each disk's count
    /// must stay within `ceil(volume / M)`.
    fn placement_ok(&self, space: &GridSpace, grid: &[u32], cur: &[u32]) -> bool {
        let k = cur.len();
        let mut lo = vec![0u32; k];
        let mut counts = vec![0u32; self.m as usize];
        loop {
            // Count disks inside the box [lo ..= cur].
            counts.iter_mut().for_each(|c| *c = 0);
            let volume: u64 = lo
                .iter()
                .zip(cur)
                .map(|(&l, &c)| u64::from(c - l + 1))
                .product();
            let cap = volume.div_ceil(u64::from(self.m)) as u32;
            let mut pos = lo.clone();
            let ok = 'scan: loop {
                let id = space.linearize_unchecked(&pos);
                let v = grid[id as usize];
                debug_assert_ne!(v, u32::MAX, "box must be complete");
                counts[v as usize] += 1;
                if counts[v as usize] > cap {
                    break 'scan false;
                }
                // Advance pos within [lo ..= cur].
                let mut dim = k;
                loop {
                    if dim == 0 {
                        break 'scan true;
                    }
                    dim -= 1;
                    pos[dim] += 1;
                    if pos[dim] <= cur[dim] {
                        break;
                    }
                    pos[dim] = lo[dim];
                }
            };
            if !ok {
                return false;
            }
            // Advance lo over all corners ≤ cur.
            let mut dim = k;
            loop {
                if dim == 0 {
                    return true;
                }
                dim -= 1;
                lo[dim] += 1;
                if lo[dim] <= cur[dim] {
                    break;
                }
                lo[dim] = 0;
            }
        }
    }
}

enum Dfs {
    Found,
    Exhausted,
    BudgetExceeded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::StrictSearch;
    use crate::strict::verify_strictly_optimal;

    #[test]
    fn degenerate_3d_window_matches_2d_search() {
        // A (r, c, 1) window is the 2-D problem in disguise.
        for m in [3u32, 4, 6] {
            let kd = StrictSearchKd::new(vec![m + 1, m + 1, 1], m).run();
            let d2 = StrictSearch::new(m + 1, m + 1, m).run();
            assert_eq!(kd.is_sat(), d2.is_sat(), "M={m}");
        }
    }

    #[test]
    fn strictly_optimal_3d_allocations_exist_for_small_m() {
        for m in [1u32, 2, 3] {
            match StrictSearchKd::new(vec![3, 3, 3], m).run() {
                SearchOutcome::Satisfiable(alloc) => {
                    assert!(
                        verify_strictly_optimal(&alloc).is_ok(),
                        "3-D witness for M={m} failed verification"
                    );
                }
                other => panic!("expected SAT for M={m} in 3-D, got {other:?}"),
            }
        }
    }

    #[test]
    fn impossibility_extends_to_3d() {
        // M = 6 is impossible in 2-D (7x7 window); a 3-D window containing
        // a 7x7 slice must exhaust too — and does, directly.
        let outcome = StrictSearchKd::new(vec![7, 7, 2], 6)
            .with_node_budget(200_000_000)
            .run();
        assert_eq!(outcome, SearchOutcome::Unsatisfiable);
    }

    #[test]
    fn one_dimensional_windows_are_always_sat() {
        for m in [2u32, 5, 9] {
            assert!(StrictSearchKd::new(vec![12], m).run().is_sat(), "M={m}");
        }
    }

    #[test]
    fn budget_yields_unknown() {
        let outcome = StrictSearchKd::new(vec![5, 5, 5], 5)
            .with_node_budget(3)
            .run();
        assert_eq!(outcome, SearchOutcome::Unknown);
    }

    #[test]
    fn empty_dims_defaults_to_singleton() {
        assert!(StrictSearchKd::new(vec![], 3).run().is_sat());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::strict::verify_strictly_optimal;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Soundness: whatever window/disk combination we throw at the
        /// search, a SAT answer always verifies against the exhaustive
        /// strict-optimality checker.
        #[test]
        fn sat_witnesses_always_verify(
            d0 in 1u32..5, d1 in 1u32..5, d2 in 1u32..3, m in 1u32..6
        ) {
            let outcome = StrictSearchKd::new(vec![d0, d1, d2], m)
                .with_node_budget(5_000_000)
                .run();
            if let SearchOutcome::Satisfiable(alloc) = outcome {
                prop_assert!(verify_strictly_optimal(&alloc).is_ok());
            }
        }

        /// Consistency: the k-D search on an (r, c, 1) window agrees with
        /// the 2-D search on (r, c) for every shape that finishes in
        /// budget.
        #[test]
        fn degenerate_window_agreement(r in 2u32..5, c in 2u32..5, m in 1u32..5) {
            let kd = StrictSearchKd::new(vec![r, c, 1], m)
                .with_node_budget(5_000_000)
                .run();
            let d2 = crate::search::StrictSearch::new(r, c, m)
                .with_node_budget(5_000_000)
                .run();
            match (&kd, &d2) {
                (SearchOutcome::Unknown, _) | (_, SearchOutcome::Unknown) => {}
                _ => prop_assert_eq!(kd.is_sat(), d2.is_sat()),
            }
        }
    }
}
