//! Partial-match optimality conditions — the paper's Table 1 as
//! executable predicates.
//!
//! | Method | Grid condition | Disk condition | Optimal for |
//! |---|---|---|---|
//! | DM/CMD | — | — | PM queries with exactly one unspecified attribute; PM queries with an unspecified attribute `i` s.t. `dᵢ mod M = 0` |
//! | FX | `dᵢ` powers of 2 | `M` power of 2 | PM queries with exactly one unspecified attribute; PM with an unspecified attribute s.t. `dᵢ ≥ M` |
//! | ECC | `dᵢ` powers of 2 | `M` power of 2 | good average behaviour (no exact PM class claimed here) |
//! | HCAM | — | — | none claimed |
//!
//! Each `*_predicts_optimal` function returns whether the theory
//! guarantees optimality for a query; `check_prediction` verifies the
//! guarantee empirically against an allocation. The paper's T1 experiment
//! sweeps all partial-match queries and confirms zero violations.

use decluster_grid::{GridSpace, PartialMatchQuery};
use decluster_methods::{AllocationMap, DeclusteringMethod};

/// DM/CMD optimality guarantee for a partial-match query (Du &
/// Sobolewski; Li et al.): exactly one unspecified attribute, **or** some
/// unspecified attribute's partition count is a multiple of `M`.
pub fn dm_predicts_optimal(space: &GridSpace, m: u32, q: &PartialMatchQuery) -> bool {
    if q.dims() != space.k() || m == 0 {
        return false;
    }
    let unspecified: Vec<usize> = q
        .bindings()
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.is_none().then_some(i))
        .collect();
    match unspecified.len() {
        0 => true, // point queries are trivially optimal for any method
        1 => true,
        _ => unspecified.iter().any(|&i| space.dim(i).is_multiple_of(m)),
    }
}

/// FX optimality guarantee for a partial-match query (Kim & Pramanik):
/// all `dᵢ` and `M` powers of two, and either exactly one unspecified
/// attribute or some unspecified attribute with `dᵢ ≥ M`.
pub fn fx_predicts_optimal(space: &GridSpace, m: u32, q: &PartialMatchQuery) -> bool {
    if q.dims() != space.k() || m == 0 {
        return false;
    }
    if !m.is_power_of_two() || space.dims().iter().any(|d| !d.is_power_of_two()) {
        return false;
    }
    let unspecified: Vec<usize> = q
        .bindings()
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.is_none().then_some(i))
        .collect();
    match unspecified.len() {
        0 => true,
        1 => space.dim(unspecified[0]) >= m,
        _ => unspecified.iter().any(|&i| space.dim(i) >= m),
    }
}

/// Outcome of checking one theoretical guarantee against reality.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictionCheck {
    /// Queries whose optimality the theory guaranteed.
    pub predicted: u64,
    /// Guaranteed queries that were indeed optimal.
    pub confirmed: u64,
    /// Guaranteed queries that were **not** optimal (must be 0 for a
    /// correct implementation).
    pub violated: u64,
    /// Queries with no guarantee that happened to be optimal anyway.
    pub bonus_optimal: u64,
    /// Queries with no guarantee that were suboptimal.
    pub unpredicted_suboptimal: u64,
}

impl PredictionCheck {
    /// True when no guaranteed query missed the optimum.
    pub fn holds(&self) -> bool {
        self.violated == 0
    }
}

/// Verifies a guarantee predicate against an allocation over a set of
/// partial-match queries.
pub fn check_prediction(
    alloc: &AllocationMap,
    queries: &[PartialMatchQuery],
    predicts: impl Fn(&GridSpace, u32, &PartialMatchQuery) -> bool,
) -> PredictionCheck {
    let space = alloc.space().clone();
    let m = alloc.num_disks();
    let mut out = PredictionCheck::default();
    for q in queries {
        let region = q.region(&space).expect("query fits grid");
        let rt = alloc.response_time(&region);
        let opt = region.num_buckets().div_ceil(u64::from(m));
        let optimal = rt == opt;
        if predicts(&space, m, q) {
            out.predicted += 1;
            if optimal {
                out.confirmed += 1;
            } else {
                out.violated += 1;
            }
        } else if optimal {
            out.bonus_optimal += 1;
        } else {
            out.unpredicted_suboptimal += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_methods::{DiskModulo, FieldwiseXor};

    /// All partial-match queries of a grid (including point queries).
    fn all_pm(space: &GridSpace) -> Vec<PartialMatchQuery> {
        let k = space.k();
        let mut out = Vec::new();
        let mut idx = vec![0u32; k];
        loop {
            let bindings: Vec<Option<u32>> = idx
                .iter()
                .zip(space.dims())
                .map(|(&c, &d)| (c < d).then_some(c))
                .collect();
            if bindings.iter().any(Option::is_some) {
                out.push(PartialMatchQuery::new(bindings).unwrap());
            }
            let mut dim = k;
            loop {
                if dim == 0 {
                    return out;
                }
                dim -= 1;
                idx[dim] += 1;
                if idx[dim] <= space.dim(dim) {
                    break;
                }
                idx[dim] = 0;
            }
        }
    }

    #[test]
    fn dm_theorem_holds_on_divisible_grid() {
        // d = 8, M = 4: every PM query with an unspecified attribute has
        // d_i mod M = 0, so DM must be optimal on all of them.
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let alloc = AllocationMap::from_method(&space, &dm).unwrap();
        let check = check_prediction(&alloc, &all_pm(&space), dm_predicts_optimal);
        assert!(check.holds(), "{check:?}");
        assert_eq!(check.predicted, check.confirmed);
        assert_eq!(check.unpredicted_suboptimal, 0);
    }

    #[test]
    fn dm_theorem_holds_on_non_divisible_grid() {
        // d = 9, M = 4: only the one-unspecified class is guaranteed.
        let space = GridSpace::new_2d(9, 9).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let alloc = AllocationMap::from_method(&space, &dm).unwrap();
        let check = check_prediction(&alloc, &all_pm(&space), dm_predicts_optimal);
        assert!(check.holds(), "{check:?}");
        assert!(check.predicted > 0);
    }

    #[test]
    fn fx_theorem_holds_on_power_of_two_grid() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let fx = FieldwiseXor::new(&space, 8).unwrap();
        let alloc = AllocationMap::from_method(&space, &fx).unwrap();
        let check = check_prediction(&alloc, &all_pm(&space), fx_predicts_optimal);
        assert!(check.holds(), "{check:?}");
        assert!(check.predicted > 0);
    }

    #[test]
    fn fx_predicts_nothing_on_odd_grids() {
        let space = GridSpace::new_2d(9, 9).unwrap();
        let q = PartialMatchQuery::new(vec![Some(0), None]).unwrap();
        assert!(!fx_predicts_optimal(&space, 8, &q));
        let space2 = GridSpace::new_2d(16, 16).unwrap();
        assert!(!fx_predicts_optimal(&space2, 6, &q));
        assert!(fx_predicts_optimal(&space2, 8, &q));
    }

    #[test]
    fn dm_conditions_enumerated() {
        let space = GridSpace::new_2d(8, 6).unwrap();
        let m = 4;
        // Exactly one unspecified: guaranteed.
        let q1 = PartialMatchQuery::new(vec![Some(1), None]).unwrap();
        assert!(dm_predicts_optimal(&space, m, &q1));
        // Two unspecified, d0 = 8 divisible by 4: guaranteed.
        let q2 = PartialMatchQuery::new(vec![None, None]).unwrap();
        assert!(dm_predicts_optimal(&space, m, &q2));
        // Two unspecified on a 6x6 grid with M = 4: no guarantee.
        let space66 = GridSpace::new_2d(6, 6).unwrap();
        assert!(!dm_predicts_optimal(&space66, m, &q2));
        // Point query: trivially guaranteed.
        let q3 = PartialMatchQuery::new(vec![Some(0), Some(0)]).unwrap();
        assert!(dm_predicts_optimal(&space66, m, &q3));
    }

    #[test]
    fn three_attribute_dm_guarantee() {
        // 3-D: d = (8, 8, 8), M = 8 — everything divisible, everything
        // guaranteed and confirmed.
        let space = GridSpace::new_cube(3, 8).unwrap();
        let dm = DiskModulo::new(&space, 8).unwrap();
        let alloc = AllocationMap::from_method(&space, &dm).unwrap();
        let check = check_prediction(&alloc, &all_pm(&space), dm_predicts_optimal);
        assert!(check.holds(), "{check:?}");
        assert_eq!(check.unpredicted_suboptimal, 0);
    }
}
