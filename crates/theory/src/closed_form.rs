//! Closed-form response-time analysis for the modulo family.
//!
//! The CMD line of work (Li, Srivastava & Rotem, VLDB'92) analyzes Disk
//! Modulo analytically; this module re-derives the counting arguments as
//! executable formulas and cross-checks them against the simulator. They
//! are exact, placement-invariant, and O(1) — the analytical backbone
//! behind DM's flat curves in the reproduced figures.
//!
//! For a 2-D range query of shape `a × b` on `M` disks, DM's response
//! time is the largest number of cells on one anti-diagonal class:
//! `max_c |{(i, j) : 0 ≤ i < a, 0 ≤ j < b, (i + j) ≡ c (mod M)}|`.
//! Because DM is translation-covariant (shifting a query permutes the
//! classes), the count is independent of where the query sits — which is
//! why DM's mean and worst case coincide in the T3 profiles.

use decluster_grid::GridSpace;
use decluster_methods::{DeclusteringMethod, DiskModulo};

/// DM/CMD response time of an `a × b` range query on `M` disks, exactly
/// and in O(min(a, b, M)) time, valid for any placement.
///
/// Derivation: cells with `i + j ≡ c` form the anti-diagonals; diagonal
/// `s = i + j` (for `0 ≤ s ≤ a + b − 2`) holds
/// `min(s, a−1, b−1, a+b−2−s) + 1` cells, and class `c` collects the
/// diagonals `s ≡ c (mod M)`. The maximum class is reached at the middle
/// diagonal's class; summing the trapezoid profile per class gives the
/// closed form below.
///
/// Returns 0 for an empty shape or `m == 0`.
pub fn dm_response_time_2d(a: u64, b: u64, m: u32) -> u64 {
    if a == 0 || b == 0 || m == 0 {
        return 0;
    }
    let m = u64::from(m);
    let (short, long) = (a.min(b), a.max(b));
    // Count per class c: sum over diagonals s ≡ c (mod m) of the
    // trapezoid height min(s, short-1, long-1, a+b-2-s)+1. Rather than a
    // fully closed expression (the trapezoid/modulus case analysis is
    // error-prone), evaluate the per-class sums directly over the m
    // residues — still O(total diagonals / m · m) = O(a + b) worst case,
    // and exact.
    let last = a + b - 2;
    let mut best = 0u64;
    for c in 0..m.min(last + 1) {
        let mut count = 0u64;
        let mut s = c;
        while s <= last {
            let height = s.min(short - 1).min(last - s) + 1;
            count += height;
            s += m;
        }
        best = best.max(count);
    }
    let _ = long;
    best
}

/// Whether the formula's placement-invariance premise holds for a shape:
/// always true for DM (kept as an executable statement of the lemma,
/// verified by the property tests below).
pub fn dm_is_translation_invariant(space: &GridSpace, m: u32, a: u32, b: u32) -> bool {
    if m == 0 || a == 0 || b == 0 || a > space.dim(0) || b > space.dim(1) {
        return false;
    }
    let dm = match DiskModulo::new(space, m) {
        Ok(dm) => dm,
        Err(_) => return false,
    };
    let expected = dm_response_time_2d(u64::from(a), u64::from(b), m);
    // Spot-check all placements on small grids, corners on large ones.
    let rows = space.dim(0) - a;
    let cols = space.dim(1) - b;
    let candidates: Vec<(u32, u32)> = if u64::from(rows + 1) * u64::from(cols + 1) <= 1024 {
        (0..=rows)
            .flat_map(|r| (0..=cols).map(move |c| (r, c)))
            .collect()
    } else {
        vec![
            (0, 0),
            (rows, 0),
            (0, cols),
            (rows, cols),
            (rows / 2, cols / 2),
        ]
    };
    candidates.into_iter().all(|(r, c)| {
        let mut per_disk = vec![0u64; m as usize];
        for i in r..r + a {
            for j in c..c + b {
                per_disk[dm.disk_of(&[i, j]).index()] += 1;
            }
        }
        per_disk.into_iter().max().unwrap_or(0) == expected
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_cases() {
        // 2x2 on M=4: diagonals 0,1,2 hold 1,2,1 cells; classes {0},{1},{2}.
        assert_eq!(dm_response_time_2d(2, 2, 4), 2);
        // 1xN row on M >= N: one cell per class.
        assert_eq!(dm_response_time_2d(1, 8, 16), 1);
        assert_eq!(dm_response_time_2d(1, 16, 16), 1);
        // 1xN row with N = 2M: two cells per class.
        assert_eq!(dm_response_time_2d(1, 32, 16), 2);
        // Square s x s with M >= 2s-1: the middle diagonal, s cells.
        assert_eq!(dm_response_time_2d(4, 4, 16), 4);
        assert_eq!(dm_response_time_2d(8, 8, 16), 8);
        // Full wrap: a x b with M = 1 is the whole area.
        assert_eq!(dm_response_time_2d(3, 5, 1), 15);
        // Degenerate inputs.
        assert_eq!(dm_response_time_2d(0, 5, 4), 0);
        assert_eq!(dm_response_time_2d(5, 5, 0), 0);
    }

    #[test]
    fn matches_simulation_on_a_grid() {
        let space = GridSpace::new_2d(24, 24).unwrap();
        for m in [3u32, 4, 5, 7, 8, 16] {
            for (a, b) in [(1u32, 1u32), (2, 2), (3, 7), (4, 4), (5, 12), (24, 24)] {
                assert!(
                    dm_is_translation_invariant(&space, m, a, b),
                    "formula mismatch at m={m} shape=({a},{b})"
                );
            }
        }
    }

    #[test]
    fn formula_consistent_with_t3_style_profiles() {
        use crate::bounds::shape_profile;
        use decluster_methods::AllocationMap;
        let space = GridSpace::new_2d(32, 32).unwrap();
        let dm = DiskModulo::new(&space, 16).unwrap();
        let alloc = AllocationMap::from_method(&space, &dm).unwrap();
        for shape in [[2u32, 2], [4, 4], [2, 8], [1, 16]] {
            let p = shape_profile(&alloc, &shape).unwrap();
            let formula = dm_response_time_2d(u64::from(shape[0]), u64::from(shape[1]), 16);
            assert_eq!(p.best, formula, "{shape:?}");
            assert_eq!(p.worst, formula, "{shape:?}");
            assert_eq!(p.mean, formula as f64, "{shape:?}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The formula equals brute-force counting for arbitrary shapes.
        #[test]
        fn formula_equals_brute_force(a in 1u64..20, b in 1u64..20, m in 1u32..20) {
            let mut counts = vec![0u64; m as usize];
            for i in 0..a {
                for j in 0..b {
                    counts[((i + j) % u64::from(m)) as usize] += 1;
                }
            }
            let brute = counts.into_iter().max().unwrap();
            prop_assert_eq!(dm_response_time_2d(a, b, m), brute);
        }

        /// Placement invariance on random grids.
        #[test]
        fn translation_invariance(side in 6u32..20, a in 1u32..6, b in 1u32..6, m in 1u32..10) {
            let space = GridSpace::new_2d(side, side).unwrap();
            prop_assume!(a <= side && b <= side);
            prop_assert!(dm_is_translation_invariant(&space, m, a, b));
        }
    }
}
