//! Strict-optimality verification and the known strictly optimal
//! allocations.

use decluster_grid::{BucketCoord, BucketRegion, GridSpace};
use decluster_methods::{AllocationMap, DeclusteringMethod};

/// A witness that an allocation is *not* strictly optimal: a range query
/// whose response time exceeds the `ceil(|Q|/M)` bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterExample {
    /// The violating query region.
    pub region: BucketRegion,
    /// Response time the allocation achieves on it.
    pub response_time: u64,
    /// The optimal bound it misses.
    pub optimal: u64,
}

/// Checks whether `alloc` is strictly optimal for range queries: for
/// **every** axis-aligned sub-rectangle `Q` of the grid,
/// `RT(Q) = ceil(|Q| / M)`.
///
/// Exhaustive over all `Π dᵢ(dᵢ+1)/2` regions, so intended for the small
/// windows the theory works with (a 16×16 grid is ~18k regions and runs in
/// milliseconds).
///
/// # Errors
/// Returns the first (in lexicographic corner order) violating query as a
/// [`CounterExample`].
pub fn verify_strictly_optimal(alloc: &AllocationMap) -> Result<(), CounterExample> {
    let space = alloc.space().clone();
    let m = alloc.num_disks();
    let mut corner_lo = vec![0u32; space.k()];
    loop {
        // Iterate all upper corners ≥ lo.
        let mut corner_hi = corner_lo.clone();
        loop {
            let region = BucketRegion::new(
                &space,
                BucketCoord::from(corner_lo.clone()),
                BucketCoord::from(corner_hi.clone()),
            )
            .expect("corners in grid");
            let rt = alloc.response_time(&region);
            let opt = region.num_buckets().div_ceil(u64::from(m));
            if rt != opt {
                return Err(CounterExample {
                    region,
                    response_time: rt,
                    optimal: opt,
                });
            }
            if !advance(&mut corner_hi, &space, &corner_lo) {
                break;
            }
        }
        if !advance(&mut corner_lo, &space, &vec![0; space.k()]) {
            return Ok(());
        }
    }
}

/// Advances a mixed-radix counter with per-dimension lower bounds;
/// returns false when it wraps.
fn advance(counter: &mut [u32], space: &GridSpace, floor: &[u32]) -> bool {
    for i in (0..counter.len()).rev() {
        counter[i] += 1;
        if counter[i] < space.dim(i) {
            return true;
        }
        counter[i] = floor[i];
    }
    false
}

/// The known strictly optimal lattice allocations, where they exist:
///
/// * `M = 1` — everything on the one disk (trivially optimal);
/// * `M = 2` — the checkerboard `(i + j) mod 2`;
/// * `M = 3` — the diagonal lattice `(i + j) mod 3`;
/// * `M = 5` — the knight's-move lattice `(i + 2j) mod 5`.
///
/// Returns `None` for any other `M` — for `M = 4` and every `M > 5` the
/// exhaustive search ([`crate::search`]) shows no strictly optimal
/// allocation exists, which is the paper's theorem (strengthened at
/// `M = 4`).
///
/// Only defined for 2-D grids (the setting of the impossibility result).
pub fn known_strict_allocation(space: &GridSpace, m: u32) -> Option<AllocationMap> {
    if space.k() != 2 {
        return None;
    }
    let table: Vec<u32> = match m {
        1 => space.iter().map(|_| 0).collect(),
        2 | 3 => space
            .iter()
            .map(|b| (b.coord(0) + b.coord(1)) % m)
            .collect(),
        5 => space
            .iter()
            .map(|b| (b.coord(0) + 2 * b.coord(1)) % 5)
            .collect(),
        _ => return None,
    };
    Some(AllocationMap::from_table(space, m, table).expect("lattice table is well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_methods::{DiskModulo, Hcam};

    #[test]
    fn lattice_allocations_verify_for_1_2_3_5() {
        for m in [1u32, 2, 3, 5] {
            let space = GridSpace::new_2d(9, 9).unwrap();
            let alloc = known_strict_allocation(&space, m)
                .unwrap_or_else(|| panic!("no lattice for M={m}"));
            assert!(
                verify_strictly_optimal(&alloc).is_ok(),
                "lattice for M={m} failed"
            );
        }
    }

    #[test]
    fn no_lattice_claimed_for_other_m() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        for m in [4u32, 6, 7, 8, 16] {
            assert!(known_strict_allocation(&space, m).is_none(), "M={m}");
        }
        let cube = GridSpace::new_cube(3, 4).unwrap();
        assert!(known_strict_allocation(&cube, 2).is_none());
    }

    #[test]
    fn dm_at_m4_has_a_counterexample() {
        // DM with M=4: the 2x2 square at the origin holds disk 1 twice
        // (sums 0,1,1,2) while ceil(4/4)=1.
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let alloc = AllocationMap::from_method(&space, &dm).unwrap();
        let ce = verify_strictly_optimal(&alloc).unwrap_err();
        assert!(ce.response_time > ce.optimal);
        assert!(ce.region.num_buckets() >= 2);
    }

    #[test]
    fn hcam_is_not_strictly_optimal_either() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let hcam = Hcam::new(&space, 8).unwrap();
        let alloc = AllocationMap::from_method(&space, &hcam).unwrap();
        assert!(verify_strictly_optimal(&alloc).is_err());
    }

    #[test]
    fn verifier_works_in_one_dimension() {
        // Round-robin on a line is strictly optimal for every interval.
        let space = GridSpace::new(vec![12]).unwrap();
        let table: Vec<u32> = (0..12).map(|i| i % 4).collect();
        let alloc = AllocationMap::from_table(&space, 4, table).unwrap();
        assert!(verify_strictly_optimal(&alloc).is_ok());
        // A swap breaks it.
        let mut bad: Vec<u32> = (0..12).map(|i| i % 4).collect();
        bad.swap(0, 1);
        let alloc = AllocationMap::from_table(&space, 4, bad).unwrap();
        assert!(verify_strictly_optimal(&alloc).is_err());
    }

    #[test]
    fn verifier_works_in_three_dimensions() {
        // Checkerboard parity in 3-D for M=2 is strictly optimal (any box
        // has color counts within 1).
        let space = GridSpace::new_cube(3, 4).unwrap();
        let table: Vec<u32> = space.iter().map(|b| (b.coord_sum() % 2) as u32).collect();
        let alloc = AllocationMap::from_table(&space, 2, table).unwrap();
        assert!(verify_strictly_optimal(&alloc).is_ok());
    }

    #[test]
    fn counterexample_reports_exact_numbers() {
        // All buckets on disk 0 of 2: the 1x2 query has RT 2 vs optimal 1.
        let space = GridSpace::new_2d(2, 2).unwrap();
        let alloc = AllocationMap::from_table(&space, 2, vec![0, 0, 0, 0]).unwrap();
        let ce = verify_strictly_optimal(&alloc).unwrap_err();
        assert_eq!(ce.optimal, 1);
        assert_eq!(ce.response_time, 2);
    }
}
