//! Exhaustive search for strictly optimal 2-D allocations.
//!
//! Strict optimality is a monotone constraint: an allocation of an `R × C`
//! window is strictly optimal iff **no disk appears more than
//! `ceil(area/M)` times in any sub-rectangle** (the pigeonhole bound makes
//! `≥` automatic). The search therefore assigns buckets in row-major
//! order and, after each assignment, re-checks every rectangle whose
//! bottom-right corner is the just-assigned cell — those are exactly the
//! rectangles that became fully assigned. Any violation prunes the whole
//! subtree, so exhausting the tree **proves** no strictly optimal
//! allocation of the window exists; and since a strictly optimal
//! allocation of a larger grid restricts to one of any window, that proves
//! impossibility for every grid containing the window.

use decluster_grid::GridSpace;
use decluster_methods::AllocationMap;

/// Result of a [`StrictSearch`] run.
#[derive(Clone, Debug, PartialEq)]
pub enum SearchOutcome {
    /// A strictly optimal allocation of the window was found.
    Satisfiable(AllocationMap),
    /// The search space was exhausted: no strictly optimal allocation of
    /// this window (hence of any larger grid) exists.
    Unsatisfiable,
    /// The node budget ran out before the search concluded.
    Unknown,
}

impl SearchOutcome {
    /// True for [`SearchOutcome::Satisfiable`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SearchOutcome::Satisfiable(_))
    }
}

/// Statistics of a completed search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Decision nodes expanded.
    pub nodes: u64,
    /// Subtrees pruned by a rectangle violation.
    pub prunes: u64,
}

/// Configurable exhaustive search for a strictly optimal allocation of an
/// `rows × cols` window onto `m` disks.
#[derive(Clone, Debug)]
pub struct StrictSearch {
    rows: u32,
    cols: u32,
    m: u32,
    node_budget: u64,
    symmetry_breaking: bool,
}

impl StrictSearch {
    /// A search over an `rows × cols` window with `m` disks, default node
    /// budget 10 million, symmetry breaking on.
    pub fn new(rows: u32, cols: u32, m: u32) -> Self {
        StrictSearch {
            rows: rows.max(1),
            cols: cols.max(1),
            m: m.max(1),
            node_budget: 10_000_000,
            symmetry_breaking: true,
        }
    }

    /// Caps the number of decision nodes; exceeding it yields
    /// [`SearchOutcome::Unknown`].
    pub fn with_node_budget(mut self, budget: u64) -> Self {
        self.node_budget = budget;
        self
    }

    /// Disables disk-relabelling symmetry breaking (for testing the
    /// optimization itself; exhaustiveness is unaffected either way).
    pub fn without_symmetry_breaking(mut self) -> Self {
        self.symmetry_breaking = false;
        self
    }

    /// Runs the search.
    pub fn run(&self) -> SearchOutcome {
        self.run_with_stats().0
    }

    /// Runs the search and reports node/prune counts.
    pub fn run_with_stats(&self) -> (SearchOutcome, SearchStats) {
        let total = (self.rows * self.cols) as usize;
        let mut grid: Vec<u32> = vec![u32::MAX; total];
        let mut stats = SearchStats::default();
        let outcome = self.dfs(&mut grid, 0, 0, &mut stats);
        let outcome = match outcome {
            Dfs::Found => {
                let space = GridSpace::new_2d(self.rows, self.cols).expect("window dims validated");
                SearchOutcome::Satisfiable(
                    AllocationMap::from_table(&space, self.m, grid)
                        .expect("search grid is complete and in range"),
                )
            }
            Dfs::Exhausted => SearchOutcome::Unsatisfiable,
            Dfs::BudgetExceeded => SearchOutcome::Unknown,
        };
        (outcome, stats)
    }

    fn dfs(&self, grid: &mut [u32], cell: usize, max_used: u32, stats: &mut SearchStats) -> Dfs {
        if cell == grid.len() {
            return Dfs::Found;
        }
        if stats.nodes >= self.node_budget {
            return Dfs::BudgetExceeded;
        }
        stats.nodes += 1;
        let (r, c) = ((cell as u32) / self.cols, (cell as u32) % self.cols);
        // Disk-relabelling symmetry: the first use of a new disk may as
        // well be the smallest unused label.
        let candidates = if self.symmetry_breaking {
            self.m.min(max_used + 1)
        } else {
            self.m
        };
        for disk in 0..candidates {
            grid[cell] = disk;
            if self.placement_ok(grid, r, c) {
                let next_max = max_used.max(disk + 1);
                match self.dfs(grid, cell + 1, next_max, stats) {
                    Dfs::Found => return Dfs::Found,
                    Dfs::BudgetExceeded => {
                        grid[cell] = u32::MAX;
                        return Dfs::BudgetExceeded;
                    }
                    Dfs::Exhausted => {}
                }
            } else {
                stats.prunes += 1;
            }
        }
        grid[cell] = u32::MAX;
        Dfs::Exhausted
    }

    /// Checks every rectangle whose bottom-right corner is `(r, c)`: all
    /// disk counts must stay within `ceil(area/M)`.
    fn placement_ok(&self, grid: &[u32], r: u32, c: u32) -> bool {
        let cols = self.cols as usize;
        let mut counts = vec![0u32; self.m as usize];
        for r1 in (0..=r).rev() {
            // Growing the rectangle upward; reset per (r1, c1) column scan.
            for c1 in (0..=c).rev() {
                counts.iter_mut().for_each(|x| *x = 0);
                let area = u64::from(r - r1 + 1) * u64::from(c - c1 + 1);
                let cap = area.div_ceil(u64::from(self.m)) as u32;
                let mut ok = true;
                'scan: for rr in r1..=r {
                    for cc in c1..=c {
                        let v = grid[rr as usize * cols + cc as usize];
                        debug_assert_ne!(v, u32::MAX, "rectangle must be complete");
                        counts[v as usize] += 1;
                        if counts[v as usize] > cap {
                            ok = false;
                            break 'scan;
                        }
                    }
                }
                if !ok {
                    return false;
                }
            }
        }
        true
    }
}

enum Dfs {
    Found,
    Exhausted,
    BudgetExceeded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strict::verify_strictly_optimal;

    #[test]
    fn sat_for_small_m() {
        for m in [1u32, 2, 3] {
            let (outcome, stats) = StrictSearch::new(5, 5, m).run_with_stats();
            match outcome {
                SearchOutcome::Satisfiable(alloc) => {
                    assert!(
                        verify_strictly_optimal(&alloc).is_ok(),
                        "search result for M={m} failed verification"
                    );
                }
                other => panic!("expected SAT for M={m}, got {other:?} ({stats:?})"),
            }
        }
    }

    #[test]
    fn sat_for_m5() {
        let outcome = StrictSearch::new(5, 5, 5).run();
        match outcome {
            SearchOutcome::Satisfiable(alloc) => {
                assert!(verify_strictly_optimal(&alloc).is_ok());
            }
            other => panic!("expected SAT for M=5, got {other:?}"),
        }
    }

    #[test]
    fn search_is_sound() {
        // Whatever the search returns as SAT must verify.
        for (r, c, m) in [(4u32, 4u32, 2u32), (3, 6, 3), (6, 3, 3)] {
            if let SearchOutcome::Satisfiable(alloc) = StrictSearch::new(r, c, m).run() {
                assert!(verify_strictly_optimal(&alloc).is_ok(), "({r},{c},{m})");
            } else {
                panic!("expected SAT at ({r},{c},{m})");
            }
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let outcome = StrictSearch::new(6, 6, 6).with_node_budget(10).run();
        assert_eq!(outcome, SearchOutcome::Unknown);
    }

    #[test]
    fn trivial_windows_are_sat_for_any_m() {
        // A 1 x C line: round-robin is strictly optimal for any M.
        for m in [2u32, 4, 7] {
            assert!(StrictSearch::new(1, 8, m).run().is_sat(), "M={m}");
        }
    }

    #[test]
    fn symmetry_breaking_preserves_outcomes() {
        let with = StrictSearch::new(3, 3, 4).run();
        let without = StrictSearch::new(3, 3, 4).without_symmetry_breaking().run();
        assert_eq!(with.is_sat(), without.is_sat());
    }
}
