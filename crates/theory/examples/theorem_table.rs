use decluster_theory::impossibility::demonstrate;
use std::time::Instant;
fn main() {
    for m in 1..=12u32 {
        let t = Instant::now();
        let d = demonstrate(m, 500_000_000);
        println!("{}  ({:?})", d.summary(), t.elapsed());
    }
}
