use crate::{HilbertError, Result};

/// A k-dimensional Hilbert curve over the grid `{0 .. 2^bits}^dims`.
///
/// Conversions use Skilling's transpose algorithm: coordinates are first
/// mapped to the curve's *transposed* index (one `bits`-bit word per
/// dimension whose bit-interleaving is the rank) and then interleaved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HilbertCurve {
    dims: usize,
    bits: u32,
}

impl HilbertCurve {
    /// Creates a curve with `dims` dimensions and `bits` bits of resolution
    /// per dimension (grid side `2^bits`).
    ///
    /// # Errors
    /// Rejects zero dimensions, zero bits, and `dims * bits > 128` (ranks
    /// are `u128`).
    pub fn new(dims: usize, bits: u32) -> Result<Self> {
        if dims == 0 {
            return Err(HilbertError::ZeroDimensions);
        }
        if bits == 0 {
            return Err(HilbertError::ZeroBits);
        }
        if (dims as u128) * u128::from(bits) > 128 {
            return Err(HilbertError::RankOverflow { dims, bits });
        }
        Ok(HilbertCurve { dims, bits })
    }

    /// The smallest curve whose grid covers `sides` (per-dimension sizes):
    /// `bits = ceil(log2(max side))`, at least 1.
    ///
    /// HCAM uses this to linearize grids that are not powers of two: walk
    /// the covering curve and skip points outside the real grid.
    ///
    /// # Errors
    /// Rejects empty `sides`, any zero side, and overflowing resolutions.
    pub fn covering(sides: &[u32]) -> Result<Self> {
        if sides.is_empty() {
            return Err(HilbertError::ZeroDimensions);
        }
        if sides.contains(&0) {
            return Err(HilbertError::ZeroBits);
        }
        let max = *sides.iter().max().expect("non-empty");
        let bits = if max <= 1 {
            1
        } else {
            32 - (max - 1).leading_zeros()
        };
        HilbertCurve::new(sides.len(), bits.max(1))
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bits of resolution per dimension.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Grid side length (`2^bits`).
    #[inline]
    pub fn side(&self) -> u64 {
        1u64 << self.bits
    }

    /// Total number of points on the curve (`2^(dims*bits)`).
    #[inline]
    pub fn num_points(&self) -> u128 {
        1u128 << (self.dims as u32 * self.bits)
    }

    /// Hilbert rank of a grid point.
    ///
    /// # Errors
    /// Arity and range errors for malformed coordinates.
    pub fn encode(&self, coords: &[u32]) -> Result<u128> {
        if coords.len() != self.dims {
            return Err(HilbertError::DimensionMismatch {
                expected: self.dims,
                got: coords.len(),
            });
        }
        let limit = if self.bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        };
        for (dim, &c) in coords.iter().enumerate() {
            if c > limit {
                return Err(HilbertError::CoordTooLarge {
                    dim,
                    coord: c,
                    bits: self.bits,
                });
            }
        }
        let mut x: Vec<u32> = coords.to_vec();
        self.axes_to_transpose(&mut x);
        Ok(self.interleave(&x))
    }

    /// Grid point at a Hilbert rank.
    ///
    /// # Errors
    /// [`HilbertError::RankOutOfRange`] if `rank >= num_points()`.
    pub fn decode(&self, rank: u128) -> Result<Vec<u32>> {
        if rank >= self.num_points() {
            return Err(HilbertError::RankOutOfRange);
        }
        let mut x = self.deinterleave(rank);
        self.transpose_to_axes(&mut x);
        Ok(x)
    }

    /// Iterates over the curve's points in rank order.
    pub fn iter(&self) -> CurveIter {
        CurveIter {
            curve: *self,
            next_rank: 0,
        }
    }

    /// Skilling's AxesToTranspose: in-place conversion of coordinates to
    /// the transposed Hilbert index.
    fn axes_to_transpose(&self, x: &mut [u32]) {
        let n = self.dims;
        if self.bits > 1 {
            let m: u32 = 1 << (self.bits - 1);
            // Inverse undo of the excess work decode performs.
            let mut q = m;
            while q > 1 {
                let p = q - 1;
                for i in 0..n {
                    if x[i] & q != 0 {
                        x[0] ^= p; // invert low bits of x[0]
                    } else {
                        let t = (x[0] ^ x[i]) & p;
                        x[0] ^= t;
                        x[i] ^= t;
                    }
                }
                q >>= 1;
            }
        }
        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t: u32 = 0;
        if self.bits > 1 {
            let mut q: u32 = 1 << (self.bits - 1);
            while q > 1 {
                if x[n - 1] & q != 0 {
                    t ^= q - 1;
                }
                q >>= 1;
            }
        }
        for v in x.iter_mut() {
            *v ^= t;
        }
    }

    /// Skilling's TransposeToAxes: inverse of [`Self::axes_to_transpose`].
    fn transpose_to_axes(&self, x: &mut [u32]) {
        let n = self.dims;
        // Gray decode by H ^ (H/2).
        let t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        if self.bits > 1 {
            // Undo excess work.
            let nn: u32 = 2 << (self.bits - 1);
            let mut q: u32 = 2;
            while q != nn {
                let p = q - 1;
                for i in (0..n).rev() {
                    if x[i] & q != 0 {
                        x[0] ^= p;
                    } else {
                        let t = (x[0] ^ x[i]) & p;
                        x[0] ^= t;
                        x[i] ^= t;
                    }
                }
                q <<= 1;
            }
        }
    }

    /// Bit-interleaves the transposed index into a rank: bit `q` of word
    /// `i` lands at rank bit `q*dims + (dims-1-i)`, MSB first.
    fn interleave(&self, x: &[u32]) -> u128 {
        let mut rank: u128 = 0;
        for q in (0..self.bits).rev() {
            for (i, &w) in x.iter().enumerate() {
                let bit = (w >> q) & 1;
                let pos = q as usize * self.dims + (self.dims - 1 - i);
                rank |= u128::from(bit) << pos;
            }
        }
        rank
    }

    /// Inverse of [`Self::interleave`].
    fn deinterleave(&self, rank: u128) -> Vec<u32> {
        let mut x = vec![0u32; self.dims];
        for q in 0..self.bits {
            for (i, xi) in x.iter_mut().enumerate() {
                let pos = q as usize * self.dims + (self.dims - 1 - i);
                let bit = ((rank >> pos) & 1) as u32;
                *xi |= bit << q;
            }
        }
        x
    }
}

/// Iterator over the points of a [`HilbertCurve`] in rank order.
#[derive(Clone, Debug)]
pub struct CurveIter {
    curve: HilbertCurve,
    next_rank: u128,
}

impl Iterator for CurveIter {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.next_rank >= self.curve.num_points() {
            return None;
        }
        let coords = self
            .curve
            .decode(self.next_rank)
            .expect("rank checked in range");
        self.next_rank += 1;
        Some(coords)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.curve.num_points() - self.next_rank).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert_eq!(
            HilbertCurve::new(0, 4).unwrap_err(),
            HilbertError::ZeroDimensions
        );
        assert_eq!(HilbertCurve::new(2, 0).unwrap_err(), HilbertError::ZeroBits);
        assert!(matches!(
            HilbertCurve::new(5, 32).unwrap_err(),
            HilbertError::RankOverflow { .. }
        ));
        assert!(HilbertCurve::new(4, 32).is_ok());
    }

    #[test]
    fn covering_picks_smallest_power_of_two() {
        assert_eq!(HilbertCurve::covering(&[64, 64]).unwrap().bits(), 6);
        assert_eq!(HilbertCurve::covering(&[5, 9]).unwrap().bits(), 4);
        assert_eq!(HilbertCurve::covering(&[1, 1]).unwrap().bits(), 1);
        assert_eq!(HilbertCurve::covering(&[16, 16, 16]).unwrap().dims(), 3);
        assert!(HilbertCurve::covering(&[]).is_err());
        assert!(HilbertCurve::covering(&[0, 4]).is_err());
    }

    #[test]
    fn rank_zero_is_origin() {
        for dims in 1..=4 {
            for bits in 1..=4 {
                let c = HilbertCurve::new(dims, bits).unwrap();
                assert_eq!(c.decode(0).unwrap(), vec![0; dims]);
                assert_eq!(c.encode(&vec![0; dims]).unwrap(), 0);
            }
        }
    }

    #[test]
    fn known_2x2_order() {
        // First-order 2-D Hilbert curve: a U shape starting at the origin.
        let c = HilbertCurve::new(2, 1).unwrap();
        let walk: Vec<Vec<u32>> = c.iter().collect();
        assert_eq!(walk[0], vec![0, 0]);
        // The three remaining points are the other corners, each adjacent
        // to its predecessor.
        assert_eq!(walk.len(), 4);
        for w in walk.windows(2) {
            let d: u32 = w[0].iter().zip(&w[1]).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive_small() {
        for (dims, bits) in [(1usize, 4u32), (2, 3), (3, 2), (4, 2)] {
            let c = HilbertCurve::new(dims, bits).unwrap();
            for rank in 0..c.num_points() {
                let coords = c.decode(rank).unwrap();
                assert_eq!(c.encode(&coords).unwrap(), rank, "dims={dims} bits={bits}");
            }
        }
    }

    #[test]
    fn curve_is_a_bijection() {
        let c = HilbertCurve::new(2, 3).unwrap();
        let mut seen = vec![false; 64];
        for p in c.iter() {
            let idx = (p[0] * 8 + p[1]) as usize;
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn adjacency_property_2d() {
        let c = HilbertCurve::new(2, 4).unwrap();
        let mut prev: Option<Vec<u32>> = None;
        for p in c.iter() {
            if let Some(q) = prev {
                let d: u32 = p.iter().zip(&q).map(|(a, b)| a.abs_diff(*b)).sum();
                assert_eq!(d, 1, "{q:?} -> {p:?}");
            }
            prev = Some(p);
        }
    }

    #[test]
    fn adjacency_property_3d() {
        let c = HilbertCurve::new(3, 2).unwrap();
        let walk: Vec<Vec<u32>> = c.iter().collect();
        assert_eq!(walk.len(), 64);
        for w in walk.windows(2) {
            let d: u32 = w[0].iter().zip(&w[1]).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn one_dimensional_curve_is_identity() {
        let c = HilbertCurve::new(1, 5).unwrap();
        for v in 0..32u32 {
            assert_eq!(c.encode(&[v]).unwrap(), u128::from(v));
            assert_eq!(c.decode(u128::from(v)).unwrap(), vec![v]);
        }
    }

    #[test]
    fn encode_rejects_bad_input() {
        let c = HilbertCurve::new(2, 3).unwrap();
        assert!(matches!(
            c.encode(&[1]).unwrap_err(),
            HilbertError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            c.encode(&[8, 0]).unwrap_err(),
            HilbertError::CoordTooLarge {
                dim: 0,
                coord: 8,
                bits: 3
            }
        ));
        assert_eq!(c.decode(64).unwrap_err(), HilbertError::RankOutOfRange);
    }

    #[test]
    fn full_resolution_32_bit_dimension() {
        let c = HilbertCurve::new(2, 32).unwrap();
        let coords = [u32::MAX, 12345];
        let rank = c.encode(&coords).unwrap();
        assert_eq!(c.decode(rank).unwrap(), coords.to_vec());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip(dims in 1usize..5, bits in 1u32..6, seed in any::<u64>()) {
            let c = HilbertCurve::new(dims, bits).unwrap();
            let rank = u128::from(seed) % c.num_points();
            let coords = c.decode(rank).unwrap();
            prop_assert_eq!(c.encode(&coords).unwrap(), rank);
        }

        #[test]
        fn successive_ranks_are_neighbours(dims in 1usize..4, bits in 1u32..5, seed in any::<u64>()) {
            let c = HilbertCurve::new(dims, bits).unwrap();
            let rank = u128::from(seed) % (c.num_points() - 1);
            let a = c.decode(rank).unwrap();
            let b = c.decode(rank + 1).unwrap();
            let d: u32 = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
            prop_assert_eq!(d, 1);
        }
    }
}
