//! Reflected binary Gray code helpers.
//!
//! The Hilbert curve is, per 2^b-cell level, a Gray-code walk of the 2^k
//! subcubes; Skilling's algorithm leans on the same encode/decode, exposed
//! here for tests and for the ECC crate's neighbours-differ-in-one-bit
//! reasoning.

/// Gray encoding: `g = v ^ (v >> 1)`. Successive values differ in exactly
/// one bit.
#[inline]
pub fn gray_encode(v: u128) -> u128 {
    v ^ (v >> 1)
}

/// Inverse of [`gray_encode`].
#[inline]
pub fn gray_decode(mut g: u128) -> u128 {
    let mut v = g;
    loop {
        g >>= 1;
        if g == 0 {
            break;
        }
        v ^= g;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_eight_codes() {
        let codes: Vec<u128> = (0..8).map(gray_encode).collect();
        assert_eq!(
            codes,
            vec![0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]
        );
    }

    #[test]
    fn successive_codes_differ_in_one_bit() {
        for v in 0u128..1024 {
            let diff = gray_encode(v) ^ gray_encode(v + 1);
            assert_eq!(diff.count_ones(), 1, "at v={v}");
        }
    }

    #[test]
    fn decode_inverts_encode() {
        for v in 0u128..4096 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
        let big = u128::MAX - 12345;
        assert_eq!(gray_decode(gray_encode(big)), big);
    }

    #[test]
    fn zero_is_fixed_point() {
        assert_eq!(gray_encode(0), 0);
        assert_eq!(gray_decode(0), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip(v in any::<u128>()) {
            prop_assert_eq!(gray_decode(gray_encode(v)), v);
        }

        #[test]
        fn encode_is_injective(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(gray_encode(a as u128), gray_encode(b as u128));
        }
    }
}
