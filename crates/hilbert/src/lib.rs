//! k-dimensional Hilbert space-filling curve.
//!
//! Substrate for the HCAM declustering method (Faloutsos & Bhagwat, PDIS
//! 1993): the Hilbert curve visits every point of a `2^b × … × 2^b`
//! k-dimensional grid exactly once, never crossing itself, and successive
//! points are always grid neighbours — the *clustering property* (Jagadish,
//! SIGMOD 1990) that makes round-robin along the curve a good declustering.
//!
//! The conversion between coordinates and curve rank uses Skilling's
//! transpose algorithm (J. Skilling, *Programming the Hilbert curve*, AIP
//! 2004), which works in any dimension with only bit operations.
//!
//! # Example
//!
//! ```
//! use decluster_hilbert::HilbertCurve;
//!
//! let curve = HilbertCurve::new(2, 3).unwrap(); // 8 × 8 grid
//! let rank = curve.encode(&[5, 2]).unwrap();
//! assert_eq!(curve.decode(rank).unwrap(), vec![5, 2]);
//!
//! // Successive curve points are grid neighbours.
//! let a = curve.decode(10).unwrap();
//! let b = curve.decode(11).unwrap();
//! let dist: u32 = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
//! assert_eq!(dist, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod curve;
mod error;
mod gray;
mod morton;

pub use curve::{CurveIter, HilbertCurve};
pub use error::HilbertError;
pub use gray::{gray_decode, gray_encode};
pub use morton::{GrayOrder, MortonOrder};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HilbertError>;
