//! Z-order (Morton) and Gray-coded linearizations.
//!
//! Alternative space-filling orders to the Hilbert curve, used to ablate
//! HCAM's design choice: Jagadish (SIGMOD 1990) showed the Hilbert curve
//! clusters better than bit-interleaving (Z-order), and Faloutsos &
//! Bhagwat built HCAM on that observation. `decluster-methods` exposes
//! curve-allocation variants over all three orders so the claim is
//! measurable here.

use crate::{HilbertError, Result};

/// The Z-order (Morton) linearization of a `dims`-dimensional grid with
/// `bits` bits per dimension: coordinate bits are interleaved, dimension
/// 0 contributing the least significant bit of each group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MortonOrder {
    dims: usize,
    bits: u32,
}

impl MortonOrder {
    /// Creates a Z-order over `{0..2^bits}^dims`.
    ///
    /// # Errors
    /// Same shape constraints as [`crate::HilbertCurve::new`].
    pub fn new(dims: usize, bits: u32) -> Result<Self> {
        if dims == 0 {
            return Err(HilbertError::ZeroDimensions);
        }
        if bits == 0 {
            return Err(HilbertError::ZeroBits);
        }
        if (dims as u128) * u128::from(bits) > 128 {
            return Err(HilbertError::RankOverflow { dims, bits });
        }
        Ok(MortonOrder { dims, bits })
    }

    /// The smallest Z-order covering per-dimension sides (cf.
    /// [`crate::HilbertCurve::covering`]).
    ///
    /// # Errors
    /// Rejects empty/zero sides.
    pub fn covering(sides: &[u32]) -> Result<Self> {
        if sides.is_empty() {
            return Err(HilbertError::ZeroDimensions);
        }
        if sides.contains(&0) {
            return Err(HilbertError::ZeroBits);
        }
        let max = *sides.iter().max().expect("non-empty");
        let bits = if max <= 1 {
            1
        } else {
            32 - (max - 1).leading_zeros()
        };
        MortonOrder::new(sides.len(), bits.max(1))
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total points (`2^(dims·bits)`).
    pub fn num_points(&self) -> u128 {
        1u128 << (self.dims as u32 * self.bits)
    }

    /// Morton rank of a point: bit `q` of coordinate `i` lands at rank
    /// bit `q·dims + i`.
    ///
    /// # Errors
    /// Arity/range errors as for Hilbert encode.
    pub fn encode(&self, coords: &[u32]) -> Result<u128> {
        if coords.len() != self.dims {
            return Err(HilbertError::DimensionMismatch {
                expected: self.dims,
                got: coords.len(),
            });
        }
        let limit = if self.bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        };
        let mut rank: u128 = 0;
        for (dim, &c) in coords.iter().enumerate() {
            if c > limit {
                return Err(HilbertError::CoordTooLarge {
                    dim,
                    coord: c,
                    bits: self.bits,
                });
            }
            for q in 0..self.bits {
                let bit = u128::from((c >> q) & 1);
                rank |= bit << (q as usize * self.dims + dim);
            }
        }
        Ok(rank)
    }

    /// Inverse of [`MortonOrder::encode`].
    ///
    /// # Errors
    /// [`HilbertError::RankOutOfRange`] for ranks beyond the grid.
    pub fn decode(&self, rank: u128) -> Result<Vec<u32>> {
        if rank >= self.num_points() {
            return Err(HilbertError::RankOutOfRange);
        }
        let mut coords = vec![0u32; self.dims];
        for q in 0..self.bits {
            for (dim, c) in coords.iter_mut().enumerate() {
                let bit = ((rank >> (q as usize * self.dims + dim)) & 1) as u32;
                *c |= bit << q;
            }
        }
        Ok(coords)
    }
}

/// Gray-coded row-major order: the row-major index passed through the
/// reflected binary Gray code, so successive *ranks* differ in one index
/// bit (not necessarily adjacent in space — the weakest of the three
/// orders, included as the ablation floor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrayOrder {
    dims: usize,
    bits: u32,
}

impl GrayOrder {
    /// Creates a Gray order over `{0..2^bits}^dims`.
    ///
    /// # Errors
    /// Same shape constraints as [`MortonOrder::new`].
    pub fn new(dims: usize, bits: u32) -> Result<Self> {
        let m = MortonOrder::new(dims, bits)?;
        Ok(GrayOrder {
            dims: m.dims,
            bits: m.bits,
        })
    }

    /// Total points.
    pub fn num_points(&self) -> u128 {
        1u128 << (self.dims as u32 * self.bits)
    }

    /// Rank of a point: Gray-decode of its bit-concatenated index.
    ///
    /// # Errors
    /// Arity/range errors as for Morton encode.
    pub fn encode(&self, coords: &[u32]) -> Result<u128> {
        if coords.len() != self.dims {
            return Err(HilbertError::DimensionMismatch {
                expected: self.dims,
                got: coords.len(),
            });
        }
        let limit = if self.bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        };
        let mut word: u128 = 0;
        for (dim, &c) in coords.iter().enumerate() {
            if c > limit {
                return Err(HilbertError::CoordTooLarge {
                    dim,
                    coord: c,
                    bits: self.bits,
                });
            }
            word |= u128::from(c) << (dim as u32 * self.bits);
        }
        Ok(crate::gray_decode(word))
    }

    /// Point at a rank (Gray-encode, then split bits).
    ///
    /// # Errors
    /// [`HilbertError::RankOutOfRange`] for ranks beyond the grid.
    pub fn decode(&self, rank: u128) -> Result<Vec<u32>> {
        if rank >= self.num_points() {
            return Err(HilbertError::RankOutOfRange);
        }
        let word = crate::gray_encode(rank);
        let mask = (1u128 << self.bits) - 1;
        Ok((0..self.dims)
            .map(|dim| ((word >> (dim as u32 * self.bits)) & mask) as u32)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_interleaves_bits() {
        let m = MortonOrder::new(2, 2).unwrap();
        // (x=0b11, y=0b00) -> bits of x at even positions.
        assert_eq!(m.encode(&[0b11, 0b00]).unwrap(), 0b0101);
        assert_eq!(m.encode(&[0b00, 0b11]).unwrap(), 0b1010);
        assert_eq!(m.encode(&[0b11, 0b11]).unwrap(), 0b1111);
    }

    #[test]
    fn morton_roundtrip_exhaustive() {
        for (dims, bits) in [(2usize, 3u32), (3, 2), (1, 5)] {
            let m = MortonOrder::new(dims, bits).unwrap();
            for rank in 0..m.num_points() {
                let c = m.decode(rank).unwrap();
                assert_eq!(m.encode(&c).unwrap(), rank);
            }
        }
    }

    #[test]
    fn morton_validation() {
        assert!(MortonOrder::new(0, 2).is_err());
        assert!(MortonOrder::new(2, 0).is_err());
        assert!(MortonOrder::new(5, 32).is_err());
        let m = MortonOrder::new(2, 2).unwrap();
        assert!(m.encode(&[4, 0]).is_err());
        assert!(m.encode(&[0]).is_err());
        assert!(m.decode(16).is_err());
    }

    #[test]
    fn morton_covering_matches_hilbert_covering() {
        let m = MortonOrder::covering(&[48, 64]).unwrap();
        assert_eq!(m.bits(), 6);
        assert_eq!(m.dims(), 2);
        assert!(MortonOrder::covering(&[]).is_err());
    }

    #[test]
    fn gray_roundtrip_exhaustive() {
        let g = GrayOrder::new(2, 3).unwrap();
        for rank in 0..g.num_points() {
            let c = g.decode(rank).unwrap();
            assert_eq!(g.encode(&c).unwrap(), rank);
        }
    }

    #[test]
    fn gray_successive_ranks_differ_in_one_index_bit() {
        let g = GrayOrder::new(2, 3).unwrap();
        for rank in 0..g.num_points() - 1 {
            let a = g.decode(rank).unwrap();
            let b = g.decode(rank + 1).unwrap();
            let word = |c: &[u32]| u64::from(c[0]) | (u64::from(c[1]) << 3);
            assert_eq!((word(&a) ^ word(&b)).count_ones(), 1);
        }
    }

    #[test]
    fn hilbert_clusters_better_than_morton() {
        // Jagadish's observation, quantified: mean spatial jump between
        // successive curve points is 1.0 for Hilbert, larger for Morton.
        let h = crate::HilbertCurve::new(2, 4).unwrap();
        let m = MortonOrder::new(2, 4).unwrap();
        let jump = |decode: &dyn Fn(u128) -> Vec<u32>| -> f64 {
            let mut total = 0u64;
            for rank in 0..(1u128 << 8) - 1 {
                let a = decode(rank);
                let b = decode(rank + 1);
                total += a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| u64::from(x.abs_diff(*y)))
                    .sum::<u64>();
            }
            total as f64 / 255.0
        };
        let hilbert_jump = jump(&|r| h.decode(r).unwrap());
        let morton_jump = jump(&|r| m.decode(r).unwrap());
        assert_eq!(hilbert_jump, 1.0);
        assert!(morton_jump > 1.5, "morton jump {morton_jump}");
    }
}
