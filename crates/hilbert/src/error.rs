use std::fmt;

/// Errors produced by Hilbert curve construction and conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HilbertError {
    /// The curve must have at least one dimension.
    ZeroDimensions,
    /// The curve must have at least one bit of resolution per dimension.
    ZeroBits,
    /// `dims * bits` must fit in the 128-bit rank type.
    RankOverflow {
        /// Requested dimensions.
        dims: usize,
        /// Requested bits per dimension.
        bits: u32,
    },
    /// A coordinate vector has the wrong number of dimensions.
    DimensionMismatch {
        /// Expected dimensions.
        expected: usize,
        /// Supplied dimensions.
        got: usize,
    },
    /// A coordinate does not fit in the curve's per-dimension resolution.
    CoordTooLarge {
        /// Offending dimension.
        dim: usize,
        /// Supplied coordinate.
        coord: u32,
        /// Bits of resolution per dimension.
        bits: u32,
    },
    /// A rank is outside the curve (`rank >= 2^(dims*bits)`).
    RankOutOfRange,
}

impl fmt::Display for HilbertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HilbertError::ZeroDimensions => write!(f, "curve must have at least one dimension"),
            HilbertError::ZeroBits => write!(f, "curve must have at least one bit per dimension"),
            HilbertError::RankOverflow { dims, bits } => {
                write!(
                    f,
                    "curve with {dims} dims x {bits} bits exceeds 128-bit ranks"
                )
            }
            HilbertError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} coordinates, got {got}")
            }
            HilbertError::CoordTooLarge { dim, coord, bits } => {
                write!(
                    f,
                    "coordinate {coord} on dimension {dim} exceeds {bits}-bit resolution"
                )
            }
            HilbertError::RankOutOfRange => write!(f, "rank outside the curve"),
        }
    }
}

impl std::error::Error for HilbertError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_problem() {
        assert!(HilbertError::ZeroBits.to_string().contains("bit"));
        assert!(HilbertError::RankOutOfRange.to_string().contains("rank"));
        let e = HilbertError::CoordTooLarge {
            dim: 2,
            coord: 9,
            bits: 3,
        };
        assert!(e.to_string().contains("dimension 2"));
    }
}
