use crate::{BitMatrix, EccError, Result};

/// An `[n, k]` binary linear code defined by a full-row-rank parity-check
/// matrix `H` (`r × n`, `k = n − r`).
///
/// The code is the nullspace of `H`; the `2^r` **cosets** of the code
/// partition the whole `n`-bit word space, one per syndrome value. ECC
/// declustering assigns bucket-word `w` to disk `syndrome(w)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinaryLinearCode {
    h: BitMatrix,
    generators: Vec<u128>,
}

impl BinaryLinearCode {
    /// Builds a code from its parity-check matrix.
    ///
    /// # Errors
    /// [`EccError::RankDeficient`] if `H` does not have full row rank (the
    /// syndrome map would miss some disks), and
    /// [`EccError::MoreRowsThanCols`] if `r > n`.
    pub fn from_parity_check(h: BitMatrix) -> Result<Self> {
        if h.num_rows() > h.num_cols() {
            return Err(EccError::MoreRowsThanCols {
                rows: h.num_rows(),
                cols: h.num_cols(),
            });
        }
        let rank = h.rank();
        if rank != h.num_rows() {
            return Err(EccError::RankDeficient {
                rows: h.num_rows(),
                rank,
            });
        }
        let generators = h.nullspace_basis();
        Ok(BinaryLinearCode { h, generators })
    }

    /// Convenience: the (shortened) Hamming code with `r` parity bits and
    /// block length `n`.
    ///
    /// # Errors
    /// Propagates [`BitMatrix::hamming_parity_check`] errors.
    pub fn hamming(r: u32, n: usize) -> Result<Self> {
        BinaryLinearCode::from_parity_check(BitMatrix::hamming_parity_check(r, n)?)
    }

    /// Block length `n`.
    #[inline]
    pub fn block_length(&self) -> usize {
        self.h.num_cols()
    }

    /// Number of parity bits `r = n − k`.
    #[inline]
    pub fn redundancy(&self) -> usize {
        self.h.num_rows()
    }

    /// Code dimension `k` (log2 of the number of codewords).
    #[inline]
    pub fn dimension(&self) -> usize {
        self.generators.len()
    }

    /// The parity-check matrix.
    #[inline]
    pub fn parity_check(&self) -> &BitMatrix {
        &self.h
    }

    /// A generator basis of the code (nullspace basis of `H`).
    #[inline]
    pub fn generator_basis(&self) -> &[u128] {
        &self.generators
    }

    /// The syndrome of a word: which coset (disk) it belongs to. Packed
    /// with parity row 0 at bit 0, so syndromes range over `0..2^r`.
    #[inline]
    pub fn syndrome(&self, word: u128) -> u128 {
        self.h.mul_vec(word)
    }

    /// Whether `word` is a codeword (syndrome zero).
    #[inline]
    pub fn is_codeword(&self, word: u128) -> bool {
        self.syndrome(word) == 0
    }

    /// Iterates all `2^k` codewords. Practical for `k ≤ ~24`.
    pub fn codewords(&self) -> impl Iterator<Item = u128> + '_ {
        let k = self.generators.len();
        (0u128..(1u128 << k)).map(move |sel| {
            let mut w = 0u128;
            for (i, &g) in self.generators.iter().enumerate() {
                if (sel >> i) & 1 == 1 {
                    w ^= g;
                }
            }
            w
        })
    }

    /// Minimum Hamming distance of the code (= minimum nonzero codeword
    /// weight). Returns `None` when the codeword space is too large to
    /// enumerate (`k > 24`) or the code is trivial (`k = 0`).
    pub fn min_distance(&self) -> Option<u32> {
        let k = self.generators.len();
        if k == 0 || k > 24 {
            return None;
        }
        self.codewords()
            .skip(1) // skip the zero word
            .map(|w| w.count_ones())
            .min()
    }

    /// The number of cosets (`2^r`) — the number of disks ECC declustering
    /// serves.
    #[inline]
    pub fn num_cosets(&self) -> u128 {
        1u128 << self.h.num_rows()
    }

    /// The weight distribution `A_0..A_n` of the code: `A_w` counts
    /// codewords of Hamming weight `w`. Returns `None` when the codeword
    /// space is too large to enumerate (`k > 24`).
    ///
    /// For ECC declustering, `A_w > 0` means two buckets on the *same*
    /// disk can differ in exactly `w` coordinate bits — the geometry of
    /// what the method keeps apart.
    pub fn weight_distribution(&self) -> Option<Vec<u64>> {
        if self.generators.len() > 24 {
            return None;
        }
        let mut dist = vec![0u64; self.block_length() + 1];
        for w in self.codewords() {
            dist[w.count_ones() as usize] += 1;
        }
        Some(dist)
    }

    /// The weight of each coset's minimum-weight member (the *coset
    /// leader*), indexed by syndrome. Leader weight `t` means some bucket
    /// word is `t` bit flips away from the coset — for declustering it is
    /// the minimum coordinate-bit distance from disk 0's pattern to that
    /// disk's pattern. Returns `None` when the word space is too large to
    /// enumerate (`n > 24`).
    pub fn coset_leader_weights(&self) -> Option<Vec<u32>> {
        let n = self.block_length();
        if n > 24 {
            return None;
        }
        let r = self.redundancy();
        let mut leaders = vec![u32::MAX; 1usize << r];
        let mut remaining = leaders.len();
        // Enumerate words by increasing weight: the first word hitting a
        // syndrome is that coset's leader.
        for weight in 0..=n as u32 {
            if remaining == 0 {
                break;
            }
            // All words of this weight, via Gosper's hack within n bits.
            if weight == 0 {
                let s = self.syndrome(0) as usize;
                if leaders[s] == u32::MAX {
                    leaders[s] = 0;
                    remaining -= 1;
                }
                continue;
            }
            let mut word: u128 = (1u128 << weight) - 1;
            let limit: u128 = 1u128 << n;
            while word < limit {
                let s = self.syndrome(word) as usize;
                if leaders[s] == u32::MAX {
                    leaders[s] = weight;
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
                // Gosper's hack: next word with the same popcount.
                let c = word & word.wrapping_neg();
                let rr = word + c;
                word = (((rr ^ word) >> 2) / c) | rr;
            }
        }
        Some(leaders)
    }

    /// The covering radius: the largest coset-leader weight — how far the
    /// farthest word sits from the code. Returns `None` for oversized
    /// codes (see [`BinaryLinearCode::coset_leader_weights`]).
    pub fn covering_radius(&self) -> Option<u32> {
        self.coset_leader_weights()
            .map(|ws| ws.into_iter().max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_7_4_classic_properties() {
        let c = BinaryLinearCode::hamming(3, 7).unwrap();
        assert_eq!(c.block_length(), 7);
        assert_eq!(c.redundancy(), 3);
        assert_eq!(c.dimension(), 4);
        assert_eq!(c.num_cosets(), 8);
        assert_eq!(c.min_distance(), Some(3));
        assert_eq!(c.codewords().count(), 16);
    }

    #[test]
    fn syndrome_partitions_word_space_evenly() {
        let c = BinaryLinearCode::hamming(3, 7).unwrap();
        let mut counts = vec![0u32; 8];
        for w in 0u128..128 {
            counts[c.syndrome(w) as usize] += 1;
        }
        // Each coset has exactly 2^k = 16 words.
        assert!(counts.iter().all(|&n| n == 16), "{counts:?}");
    }

    #[test]
    fn all_codewords_have_zero_syndrome() {
        let c = BinaryLinearCode::hamming(4, 15).unwrap();
        for w in c.codewords() {
            assert!(c.is_codeword(w));
        }
    }

    #[test]
    fn syndrome_constant_within_coset() {
        let c = BinaryLinearCode::hamming(3, 6).unwrap();
        // Pick a coset representative and verify representative ^ codeword
        // keeps the syndrome.
        let rep: u128 = 0b101;
        let s = c.syndrome(rep);
        for w in c.codewords() {
            assert_eq!(c.syndrome(rep ^ w), s);
        }
    }

    #[test]
    fn shortened_hamming_keeps_distance_3() {
        for n in 5..=14 {
            let c = BinaryLinearCode::hamming(4, n).unwrap();
            assert!(c.min_distance().unwrap() >= 3, "n={n}");
        }
    }

    #[test]
    fn rank_deficient_matrix_rejected() {
        // Two identical rows.
        let h = BitMatrix::from_rows(4, vec![0b0011, 0b0011]).unwrap();
        assert!(matches!(
            BinaryLinearCode::from_parity_check(h).unwrap_err(),
            EccError::RankDeficient { rows: 2, rank: 1 }
        ));
    }

    #[test]
    fn square_full_rank_code_is_trivial() {
        // H = I2: only the zero codeword; every word its own coset rep.
        let h = BitMatrix::from_rows(2, vec![0b01, 0b10]).unwrap();
        let c = BinaryLinearCode::from_parity_check(h).unwrap();
        assert_eq!(c.dimension(), 0);
        assert_eq!(c.min_distance(), None);
        assert_eq!(c.codewords().count(), 1);
        for w in 0..4u128 {
            assert_eq!(c.syndrome(w), w);
        }
    }

    #[test]
    fn hamming_7_4_weight_distribution_is_classic() {
        // The [7,4] Hamming code: A_0=1, A_3=7, A_4=7, A_7=1.
        let c = BinaryLinearCode::hamming(3, 7).unwrap();
        let dist = c.weight_distribution().unwrap();
        assert_eq!(dist, vec![1, 0, 0, 7, 7, 0, 0, 1]);
        assert_eq!(dist.iter().sum::<u64>(), 16);
    }

    #[test]
    fn hamming_codes_are_perfect() {
        // A perfect code: every coset leader has weight <= 1, covering
        // radius exactly 1.
        let c = BinaryLinearCode::hamming(3, 7).unwrap();
        let leaders = c.coset_leader_weights().unwrap();
        assert_eq!(leaders.len(), 8);
        assert_eq!(leaders[0], 0); // the code itself
        assert!(leaders[1..].iter().all(|&w| w == 1));
        assert_eq!(c.covering_radius(), Some(1));
    }

    #[test]
    fn shortened_hamming_covering_radius_stays_small() {
        for n in [5usize, 6] {
            let c = BinaryLinearCode::hamming(3, n).unwrap();
            let radius = c.covering_radius().unwrap();
            assert!(radius <= 2, "n={n} radius {radius}");
        }
    }

    #[test]
    fn leader_weights_are_consistent_with_syndromes() {
        let c = BinaryLinearCode::hamming(4, 10).unwrap();
        let leaders = c.coset_leader_weights().unwrap();
        // Brute-force check: the minimum weight per syndrome matches.
        let mut brute = vec![u32::MAX; 16];
        for w in 0u128..(1 << 10) {
            let s = c.syndrome(w) as usize;
            brute[s] = brute[s].min(w.count_ones());
        }
        assert_eq!(leaders, brute);
    }

    #[test]
    fn more_rows_than_cols_rejected() {
        let h = BitMatrix::from_rows(2, vec![0b01, 0b10, 0b11]).unwrap();
        assert!(matches!(
            BinaryLinearCode::from_parity_check(h).unwrap_err(),
            EccError::MoreRowsThanCols { .. }
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn syndrome_is_translation_invariant_under_codewords(
            n in 5usize..16, w in any::<u64>(), sel in any::<u32>()
        ) {
            let c = BinaryLinearCode::hamming(4, n).unwrap();
            let word = u128::from(w) & ((1u128 << n) - 1);
            // Random codeword from the generator basis.
            let mut cw = 0u128;
            for (i, &g) in c.generator_basis().iter().enumerate() {
                if (sel >> (i % 32)) & 1 == 1 {
                    cw ^= g;
                }
            }
            prop_assert_eq!(c.syndrome(word ^ cw), c.syndrome(word));
        }

        #[test]
        fn cosets_partition_evenly(r in 2u32..5, extra in 0usize..6) {
            let n = r as usize + extra;
            prop_assume!(n < (1usize << r));
            let c = BinaryLinearCode::hamming(r, n).unwrap();
            let mut counts = vec![0u64; 1 << r];
            for w in 0u128..(1u128 << n) {
                counts[c.syndrome(w) as usize] += 1;
            }
            let expected = 1u64 << (n - r as usize);
            prop_assert!(counts.iter().all(|&x| x == expected));
        }
    }
}
