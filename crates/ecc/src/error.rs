use std::fmt;

/// Errors produced by GF(2) matrix and code construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccError {
    /// Matrices and codes are limited to 128 columns (rows are `u128`).
    TooManyColumns {
        /// Requested column count.
        cols: usize,
    },
    /// A matrix needs at least one row and one column.
    EmptyMatrix,
    /// A row index was out of range.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Number of rows.
        rows: usize,
    },
    /// A column index was out of range.
    ColOutOfRange {
        /// Requested column.
        col: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A Hamming parity check with `r` rows supports at most `2^r − 1`
    /// distinct nonzero columns.
    TooManyHammingColumns {
        /// Parity bits requested.
        r: u32,
        /// Columns requested.
        n: usize,
    },
    /// A parity-check matrix must have full row rank for the syndrome map
    /// to reach all `2^r` disks.
    RankDeficient {
        /// Number of rows.
        rows: usize,
        /// Actual rank.
        rank: usize,
    },
    /// Rows of a parity-check matrix may not exceed its column count.
    MoreRowsThanCols {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::TooManyColumns { cols } => {
                write!(f, "{cols} columns exceed the 128-bit word limit")
            }
            EccError::EmptyMatrix => write!(f, "matrix must be non-empty"),
            EccError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (matrix has {rows} rows)")
            }
            EccError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range (matrix has {cols} columns)")
            }
            EccError::TooManyHammingColumns { r, n } => {
                write!(
                    f,
                    "Hamming check with r={r} supports at most 2^{r}-1 columns, got {n}"
                )
            }
            EccError::RankDeficient { rows, rank } => {
                write!(f, "parity-check matrix has rank {rank} < {rows} rows")
            }
            EccError::MoreRowsThanCols { rows, cols } => {
                write!(
                    f,
                    "parity-check matrix has {rows} rows but only {cols} columns"
                )
            }
        }
    }
}

impl std::error::Error for EccError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(EccError::EmptyMatrix.to_string().contains("non-empty"));
        assert!(EccError::TooManyColumns { cols: 200 }
            .to_string()
            .contains("200"));
        assert!(EccError::RankDeficient { rows: 4, rank: 3 }
            .to_string()
            .contains("rank 3"));
    }
}
