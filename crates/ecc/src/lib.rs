//! GF(2) linear algebra and binary linear codes.
//!
//! Substrate for ECC-based disk allocation (Faloutsos & Metaxas, IEEE ToC
//! 1991): with `M = 2^r` disks and buckets identified by `n`-bit words
//! (the concatenated binary coordinates), the disks are the `2^r` cosets of
//! an `[n, n−r]` binary linear code, and the disk of a bucket is the
//! **syndrome** of its word under the code's parity-check matrix. Buckets
//! on the same disk then differ in at least `d_min` bits, which is exactly
//! the "spread similar buckets apart" intuition.
//!
//! Words and matrix rows are bit-packed into `u128`, bounding codes at 128
//! bits — ample for the study (a 2-D 64×64 grid is 12 bits).
//!
//! # Example
//!
//! ```
//! use decluster_ecc::{BitMatrix, BinaryLinearCode};
//!
//! // The [7,4] Hamming code: columns of H are 1..=7 in binary.
//! let h = BitMatrix::hamming_parity_check(3, 7).unwrap();
//! let code = BinaryLinearCode::from_parity_check(h).unwrap();
//! assert_eq!(code.dimension(), 4);
//! assert_eq!(code.min_distance(), Some(3));
//! assert_eq!(code.syndrome(0), 0); // zero word is a codeword
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod code;
mod error;
mod matrix;

pub use code::BinaryLinearCode;
pub use error::EccError;
pub use matrix::{parity, BitMatrix};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EccError>;
