use crate::{EccError, Result};

/// Parity of a bit-packed word: 1 if it has an odd number of set bits.
#[inline]
pub fn parity(word: u128) -> u32 {
    word.count_ones() & 1
}

/// A dense matrix over GF(2), each row bit-packed into a `u128`.
///
/// Bit `j` of a row is column `j` (column 0 is the least significant bit).
/// Limited to 128 columns, which covers every code in the study.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    cols: usize,
    rows: Vec<u128>,
}

impl BitMatrix {
    /// Creates a matrix from bit-packed rows.
    ///
    /// # Errors
    /// Rejects empty matrices, more than 128 columns, and rows with bits
    /// set beyond `cols`.
    pub fn from_rows(cols: usize, rows: Vec<u128>) -> Result<Self> {
        if cols == 0 || rows.is_empty() {
            return Err(EccError::EmptyMatrix);
        }
        if cols > 128 {
            return Err(EccError::TooManyColumns { cols });
        }
        let mask = Self::col_mask(cols);
        for &r in &rows {
            if r & !mask != 0 {
                return Err(EccError::TooManyColumns { cols });
            }
        }
        Ok(BitMatrix { cols, rows })
    }

    /// The all-zero matrix of the given shape.
    ///
    /// # Errors
    /// Shape errors as for [`BitMatrix::from_rows`].
    pub fn zero(rows: usize, cols: usize) -> Result<Self> {
        BitMatrix::from_rows(cols, vec![0; rows.max(1)]).and_then(|mut m| {
            if rows == 0 {
                return Err(EccError::EmptyMatrix);
            }
            m.rows.truncate(rows);
            Ok(m)
        })
    }

    /// The parity-check matrix of a (possibly shortened) Hamming code:
    /// `r × n`, columns distinct nonzero vectors of GF(2)^r.
    ///
    /// Columns are ordered unit vectors first (guaranteeing full row rank
    /// for every `n ≥ r`), then the remaining nonzero values in increasing
    /// order. With distinct columns the code has minimum distance ≥ 3.
    ///
    /// # Errors
    /// Rejects `n > 2^r − 1` (columns would repeat), `n < r` (cannot reach
    /// full rank), and shape errors.
    pub fn hamming_parity_check(r: u32, n: usize) -> Result<Self> {
        if r == 0 || n == 0 {
            return Err(EccError::EmptyMatrix);
        }
        if r >= 128 || (r < 64 && n > (1usize << r) - 1) {
            return Err(EccError::TooManyHammingColumns { r, n });
        }
        if n < r as usize {
            return Err(EccError::MoreRowsThanCols {
                rows: r as usize,
                cols: n,
            });
        }
        // Column values: unit vectors 1, 2, 4, …, 2^(r-1), then the other
        // nonzero values in increasing order.
        let mut columns: Vec<u128> = (0..r).map(|i| 1u128 << i).collect();
        let mut v: u128 = 1;
        while columns.len() < n {
            v += 1;
            if v.count_ones() != 1 {
                columns.push(v);
            }
        }
        // Transpose the column list into r bit-packed rows.
        let mut rows = vec![0u128; r as usize];
        for (j, &col) in columns.iter().enumerate() {
            for (i, row) in rows.iter_mut().enumerate() {
                if (col >> i) & 1 == 1 {
                    *row |= 1u128 << j;
                }
            }
        }
        BitMatrix::from_rows(n, rows)
    }

    /// A full-row-rank `r × n` parity-check matrix for **any** `n ≥ r`:
    /// unit-vector columns first, then the nonzero values of GF(2)^r cycled
    /// in increasing order (repeating once exhausted).
    ///
    /// Unlike [`BitMatrix::hamming_parity_check`] this admits
    /// `n > 2^r − 1` at the cost of repeated columns (minimum distance
    /// drops to 2). ECC declustering falls back to this when a grid has
    /// more coordinate bits than a Hamming code with `log2(M)` parity bits
    /// can carry.
    ///
    /// # Errors
    /// Rejects `r == 0`, `n == 0`, `n < r`, and shape errors.
    pub fn cyclic_parity_check(r: u32, n: usize) -> Result<Self> {
        if r == 0 || n == 0 {
            return Err(EccError::EmptyMatrix);
        }
        if n < r as usize {
            return Err(EccError::MoreRowsThanCols {
                rows: r as usize,
                cols: n,
            });
        }
        if n > 128 {
            return Err(EccError::TooManyColumns { cols: n });
        }
        if r > 64 {
            return Err(EccError::TooManyColumns { cols: n });
        }
        let modulus: u128 = (1u128 << r) - 1; // count of nonzero values
        let mut columns: Vec<u128> = (0..r).map(|i| 1u128 << i).collect();
        columns.truncate(n);
        // First cycle: the remaining nonzero values (non-units), in order.
        let mut v: u128 = 1;
        while columns.len() < n && v <= modulus {
            if v.count_ones() != 1 {
                columns.push(v);
            }
            v += 1;
        }
        // Subsequent cycles: repeat all nonzero values round-robin.
        let mut v: u128 = 1;
        while columns.len() < n {
            columns.push(v);
            v = v % modulus + 1;
        }
        let mut rows = vec![0u128; r as usize];
        for (j, &col) in columns.iter().enumerate() {
            for (i, row) in rows.iter_mut().enumerate() {
                if (col >> i) & 1 == 1 {
                    *row |= 1u128 << j;
                }
            }
        }
        BitMatrix::from_rows(n, rows)
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// The bit-packed rows.
    #[inline]
    pub fn rows(&self) -> &[u128] {
        &self.rows
    }

    /// Entry at `(row, col)`.
    ///
    /// # Errors
    /// Index errors for out-of-range positions.
    pub fn get(&self, row: usize, col: usize) -> Result<bool> {
        if row >= self.rows.len() {
            return Err(EccError::RowOutOfRange {
                row,
                rows: self.rows.len(),
            });
        }
        if col >= self.cols {
            return Err(EccError::ColOutOfRange {
                col,
                cols: self.cols,
            });
        }
        Ok((self.rows[row] >> col) & 1 == 1)
    }

    /// Sets entry `(row, col)` to `value`.
    ///
    /// # Errors
    /// Index errors for out-of-range positions.
    pub fn set(&mut self, row: usize, col: usize, value: bool) -> Result<()> {
        // Bounds via get.
        self.get(row, col)?;
        if value {
            self.rows[row] |= 1u128 << col;
        } else {
            self.rows[row] &= !(1u128 << col);
        }
        Ok(())
    }

    /// Matrix–vector product over GF(2): returns the r-bit result packed
    /// with row 0 at bit 0. This is the **syndrome** operation when `self`
    /// is a parity-check matrix.
    #[inline]
    pub fn mul_vec(&self, word: u128) -> u128 {
        let mut out: u128 = 0;
        for (i, &row) in self.rows.iter().enumerate() {
            out |= u128::from(parity(row & word)) << i;
        }
        out
    }

    /// Rank over GF(2) (Gaussian elimination on a copy).
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.cols {
            let bit = 1u128 << col;
            // Find a pivot row at or below `rank` with this column set.
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r] & bit != 0) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && *row & bit != 0 {
                    *row ^= pivot_row;
                }
            }
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        rank
    }

    /// A basis of the right nullspace: all `x` with `self · x = 0`.
    ///
    /// Returns `dim = cols − rank` bit-packed vectors. When `self` is a
    /// parity-check matrix this is a generator basis of the code.
    pub fn nullspace_basis(&self) -> Vec<u128> {
        // Reduce to RREF, tracking pivot columns.
        let mut rows = self.rows.clone();
        let mut pivot_cols: Vec<usize> = Vec::new();
        let mut rank = 0usize;
        for col in 0..self.cols {
            let bit = 1u128 << col;
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r] & bit != 0) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && *row & bit != 0 {
                    *row ^= pivot_row;
                }
            }
            pivot_cols.push(col);
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        let is_pivot = {
            let mut v = vec![false; self.cols];
            for &c in &pivot_cols {
                v[c] = true;
            }
            v
        };
        // One basis vector per free column: set that column to 1 and solve
        // the pivots.
        let mut basis = Vec::with_capacity(self.cols - rank);
        for (free, &pivot) in is_pivot.iter().enumerate() {
            if pivot {
                continue;
            }
            let mut x: u128 = 1u128 << free;
            for (i, &pc) in pivot_cols.iter().enumerate() {
                // Row i reads: x[pc] + Σ_{free cols j in row i} x[j] = 0.
                if rows[i] & (1u128 << free) != 0 {
                    x |= 1u128 << pc;
                }
            }
            basis.push(x);
        }
        basis
    }
}

#[cfg(test)]
impl BitMatrix {
    /// Column mask helper exposed for tests.
    fn col_mask_public(cols: usize) -> u128 {
        Self::col_mask(cols)
    }
}

impl BitMatrix {
    #[inline]
    fn col_mask(cols: usize) -> u128 {
        if cols >= 128 {
            u128::MAX
        } else {
            (1u128 << cols) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_counts_bits() {
        assert_eq!(parity(0), 0);
        assert_eq!(parity(0b1), 1);
        assert_eq!(parity(0b1010), 0);
        assert_eq!(parity(u128::MAX), 0);
        assert_eq!(parity(u128::MAX >> 1), 1);
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            BitMatrix::from_rows(0, vec![0]).unwrap_err(),
            EccError::EmptyMatrix
        );
        assert_eq!(
            BitMatrix::from_rows(4, vec![]).unwrap_err(),
            EccError::EmptyMatrix
        );
        assert!(matches!(
            BitMatrix::from_rows(129, vec![0]).unwrap_err(),
            EccError::TooManyColumns { .. }
        ));
        // A stray bit beyond the declared width is rejected.
        assert!(BitMatrix::from_rows(3, vec![0b1000]).is_err());
        assert!(BitMatrix::from_rows(3, vec![0b111]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = BitMatrix::zero(2, 4).unwrap();
        assert!(!m.get(1, 2).unwrap());
        m.set(1, 2, true).unwrap();
        assert!(m.get(1, 2).unwrap());
        m.set(1, 2, false).unwrap();
        assert!(!m.get(1, 2).unwrap());
        assert!(m.get(2, 0).is_err());
        assert!(m.get(0, 4).is_err());
    }

    #[test]
    fn mul_vec_is_row_parities() {
        // Rows: [1 1 0], [0 1 1].
        let m = BitMatrix::from_rows(3, vec![0b011, 0b110]).unwrap();
        assert_eq!(m.mul_vec(0b000), 0b00);
        assert_eq!(m.mul_vec(0b001), 0b01);
        assert_eq!(m.mul_vec(0b010), 0b11);
        assert_eq!(m.mul_vec(0b100), 0b10);
        // 0b111 hits both bits of each row: even parity everywhere.
        assert_eq!(m.mul_vec(0b111), 0b00);
    }

    #[test]
    fn rank_of_identity_and_singular() {
        let id = BitMatrix::from_rows(3, vec![0b001, 0b010, 0b100]).unwrap();
        assert_eq!(id.rank(), 3);
        let singular = BitMatrix::from_rows(3, vec![0b011, 0b110, 0b101]).unwrap();
        // Third row is the sum of the first two.
        assert_eq!(singular.rank(), 2);
        let zero = BitMatrix::zero(3, 3).unwrap();
        assert_eq!(zero.rank(), 0);
    }

    #[test]
    fn hamming_check_has_distinct_columns_and_full_rank() {
        for (r, n) in [(3u32, 7usize), (4, 15), (4, 12), (5, 6), (2, 3)] {
            let h = BitMatrix::hamming_parity_check(r, n).unwrap();
            assert_eq!(h.num_rows(), r as usize);
            assert_eq!(h.num_cols(), n);
            assert_eq!(h.rank(), r as usize, "r={r} n={n}");
            // Columns distinct and nonzero.
            let mut cols = Vec::new();
            for j in 0..n {
                let mut c = 0u32;
                for i in 0..r as usize {
                    if h.get(i, j).unwrap() {
                        c |= 1 << i;
                    }
                }
                assert_ne!(c, 0);
                cols.push(c);
            }
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), n);
        }
    }

    #[test]
    fn hamming_check_rejects_impossible_shapes() {
        assert!(matches!(
            BitMatrix::hamming_parity_check(3, 8).unwrap_err(),
            EccError::TooManyHammingColumns { .. }
        ));
        assert!(matches!(
            BitMatrix::hamming_parity_check(5, 4).unwrap_err(),
            EccError::MoreRowsThanCols { .. }
        ));
        assert!(BitMatrix::hamming_parity_check(0, 3).is_err());
        assert!(BitMatrix::hamming_parity_check(3, 0).is_err());
    }

    #[test]
    fn cyclic_check_full_rank_beyond_hamming_limit() {
        // r=1: single all-ones row (parity check) at any width.
        let h = BitMatrix::cyclic_parity_check(1, 12).unwrap();
        assert_eq!(h.num_rows(), 1);
        assert_eq!(h.rank(), 1);
        assert_eq!(h.rows()[0], (1u128 << 12) - 1);
        // r=3, n=12 > 7: repeated columns but still full rank, no zero col.
        let h = BitMatrix::cyclic_parity_check(3, 12).unwrap();
        assert_eq!(h.rank(), 3);
        for j in 0..12 {
            let col = (0..3).fold(0u32, |acc, i| acc | (u32::from(h.get(i, j).unwrap()) << i));
            assert_ne!(col, 0, "zero column at {j}");
        }
    }

    #[test]
    fn cyclic_check_matches_hamming_within_limit() {
        // When n ≤ 2^r − 1 both constructions give distinct columns; the
        // cyclic version equals the Hamming version.
        for (r, n) in [(3u32, 7usize), (3, 5), (4, 10)] {
            assert_eq!(
                BitMatrix::cyclic_parity_check(r, n).unwrap(),
                BitMatrix::hamming_parity_check(r, n).unwrap()
            );
        }
    }

    #[test]
    fn cyclic_check_rejects_bad_shapes() {
        assert!(BitMatrix::cyclic_parity_check(0, 3).is_err());
        assert!(BitMatrix::cyclic_parity_check(3, 0).is_err());
        assert!(BitMatrix::cyclic_parity_check(5, 3).is_err());
        assert!(BitMatrix::cyclic_parity_check(2, 200).is_err());
    }

    #[test]
    fn nullspace_vectors_are_killed_by_matrix() {
        let h = BitMatrix::hamming_parity_check(3, 7).unwrap();
        let basis = h.nullspace_basis();
        assert_eq!(basis.len(), 4); // dim = 7 - 3
        for &b in &basis {
            assert_eq!(h.mul_vec(b), 0, "basis vector {b:#b} not in nullspace");
        }
        // Basis is linearly independent: stack as rows, rank = len.
        let m = BitMatrix::from_rows(7, basis).unwrap();
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn nullspace_of_full_rank_square_is_empty() {
        let id = BitMatrix::from_rows(2, vec![0b01, 0b10]).unwrap();
        assert!(id.nullspace_basis().is_empty());
    }

    #[test]
    fn col_mask_handles_128() {
        assert_eq!(BitMatrix::col_mask_public(128), u128::MAX);
        assert_eq!(BitMatrix::col_mask_public(3), 0b111);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mul_vec_is_linear(rows in proptest::collection::vec(any::<u64>(), 1..6),
                             x in any::<u64>(), y in any::<u64>()) {
            let m = BitMatrix::from_rows(64, rows.iter().map(|&r| u128::from(r)).collect()).unwrap();
            let (x, y) = (u128::from(x), u128::from(y));
            prop_assert_eq!(m.mul_vec(x ^ y), m.mul_vec(x) ^ m.mul_vec(y));
        }

        #[test]
        fn nullspace_dimension_matches_rank(rows in proptest::collection::vec(any::<u16>(), 1..8)) {
            let m = BitMatrix::from_rows(16, rows.iter().map(|&r| u128::from(r)).collect()).unwrap();
            let basis = m.nullspace_basis();
            prop_assert_eq!(basis.len(), 16 - m.rank());
            for &b in &basis {
                prop_assert_eq!(m.mul_vec(b), 0);
            }
        }
    }
}
