//! The paper's closing recommendation, executed: *"information about
//! common queries on a relation ought to be used in deciding the
//! declustering for it"*. Two relations with different query mixes get
//! different declustering methods from the advisor.
//!
//! ```text
//! cargo run --release --example workload_advisor
//! ```

use decluster::methods::advise;
use decluster::prelude::*;
use decluster::sim::workload::random_region;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let space = GridSpace::new_2d(32, 32).expect("valid grid");
    let m = 16;
    let mut rng = StdRng::seed_from_u64(7);

    // Relation A: an OLAP-style mix of full-row scans (one attribute
    // pinned, the other free) - partial-match territory.
    let rows: Vec<BucketRegion> = (0..32)
        .map(|r| {
            RangeQuery::new([r, 0], [r, 31])
                .expect("row query")
                .region(&space)
                .expect("fits grid")
        })
        .collect();

    // Relation B: interactive small square lookups placed anywhere.
    let squares: Vec<BucketRegion> = (0..200)
        .map(|_| random_region(&mut rng, &space, &[3, 3]).expect("3x3 fits"))
        .collect();

    for (label, sample) in [("row scans", &rows), ("small 3x3 squares", &squares)] {
        let advice = advise(&space, m, sample).expect("workload non-empty");
        println!("Workload: {label}");
        for (name, mean_rt) in &advice.ranking {
            let marker = if *name == advice.winner { "->" } else { "  " };
            println!("  {marker} {name:<5} mean RT {mean_rt:.3}");
        }
        let stats = advice.allocation.load_stats();
        println!(
            "  winner {} materialized: load {}..{} buckets/disk\n",
            advice.winner, stats.min, stats.max
        );
    }

    println!(
        "Different workloads, different winners - which is why the paper
concludes parallel database systems must support several declustering
methods rather than hard-wiring one."
    );

    // One step past the paper: let local search edit the winner's
    // allocation for the small-square workload. The M > 5 theorem says no
    // allocation serves every query optimally - but a concrete workload
    // is not every query.
    use decluster::methods::{optimize_allocation, LocalSearchConfig};
    let advice = advise(&space, m, &squares).expect("non-empty workload");
    let tuned = optimize_allocation(
        &space,
        &advice.allocation,
        &squares,
        LocalSearchConfig::default(),
    )
    .expect("search runs");
    println!(
        "\nLocal search on top of {}: total RT {} -> {} over {} queries ({} moves accepted)",
        advice.winner,
        tuned.initial_cost,
        tuned.final_cost,
        squares.len(),
        tuned.accepted_moves
    );
}
