//! The storage-engine view: a [`DeclusteredFile`] holding a sensor
//! relation, scanned with value-level predicates, with per-disk I/O
//! accounting on every query — what a parallel database built on this
//! library would do per relation.
//!
//! ```text
//! cargo run --release --example mini_engine
//! ```

use decluster::grid::{AttributeDomain, GridSchema, Record, Value, ValueRangeQuery};
use decluster::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // sensors(reading_time 0..86400 s, temperature -40.0..60.0 C)
    let schema = GridSchema::uniform(
        vec![
            AttributeDomain::int("reading_time", 0, 86_399),
            AttributeDomain::float("temperature", -40.0, 60.0),
        ],
        32,
    )
    .expect("schema builds");

    // Pick the method from a representative workload, per the paper's
    // conclusion: mostly small time-and-temperature windows.
    let space = schema.space().clone();
    let mut rng = StdRng::seed_from_u64(5);
    let sample: Vec<BucketRegion> = (0..200)
        .map(|_| {
            decluster::sim::workload::random_region(&mut rng, &space, &[2, 3])
                .expect("2x3 fits the grid")
        })
        .collect();
    let advice = advise(&space, 8, &sample).expect("sample non-empty");
    println!(
        "advisor picked {} for the small-window workload (ranking: {:?})\n",
        advice.winner,
        advice
            .ranking
            .iter()
            .map(|(n, rt)| format!("{n}={rt:.2}"))
            .collect::<Vec<_>>()
    );

    let kind = MethodKind::parse(advice.winner).expect("winner is a known method");
    let mut file = DeclusteredFile::create(schema, kind, 8).expect("file builds");

    // Load a day of readings: diurnal temperature cycle plus noise.
    for _ in 0..50_000 {
        let t = rng.gen_range(0..86_400i64);
        let base = -5.0 + 15.0 * ((t as f64 / 86_400.0) * std::f64::consts::TAU).sin();
        let temp = (base + rng.gen_range(-3.0f64..3.0)).clamp(-40.0, 59.9);
        file.insert(Record::new(vec![Value::Int(t), Value::Float(temp)]))
            .expect("reading in domain");
    }
    let stats = file.stats();
    println!(
        "loaded {} readings into {}/{} buckets, disk skew {:.3}",
        stats.records,
        stats.occupied_buckets,
        stats.total_buckets,
        stats.disk_skew()
    );

    // Analyst queries with exact record filtering + I/O accounting.
    let queries = [
        (
            "warm spell at peak hour",
            ValueRangeQuery::new(vec![
                Some((Value::Int(19_800), Value::Int(23_400))),
                Some((Value::Float(5.0), Value::Float(20.0))),
            ])
            .expect("query builds"),
        ),
        (
            "all frost events",
            ValueRangeQuery::new(vec![None, Some((Value::Float(-40.0), Value::Float(0.0)))])
                .expect("query builds"),
        ),
    ];
    for (label, q) in &queries {
        let scan = file.scan(q).expect("query maps to grid");
        println!(
            "\n{label}: {} records, {} buckets over {} disks, RT {} (opt {}, {:.2}x), bottleneck {:?}",
            scan.records.len(),
            scan.io.buckets_touched,
            scan.io.disks_used(),
            scan.io.response_time,
            scan.io.optimal,
            scan.io.deviation_factor(),
            scan.io.bottleneck()
        );
    }
}
