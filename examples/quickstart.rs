//! Quickstart: decluster a 2-attribute grid four ways and compare what
//! each method does to one range query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use decluster::prelude::*;

fn main() {
    // A relation partitioned 16 x 16 (256 buckets), spread over 8 disks.
    let space = GridSpace::new_2d(16, 16).expect("valid grid");
    let m = 8;

    // The paper's four methods.
    let registry = MethodRegistry::default();
    let methods = registry.paper_methods(&space, m);

    // One awkward little query: a 4x4 square that is not grid-aligned.
    let query = RangeQuery::new([3, 5], [6, 8]).expect("valid query");
    let region = query.region(&space).expect("query intersects grid");
    let optimal = optimal_response_time(region.num_buckets(), m);

    println!(
        "Query {:?}..{:?} touches {} buckets on {} disks; optimal RT = {}",
        query.lo(),
        query.hi(),
        region.num_buckets(),
        m,
        optimal
    );
    println!();
    println!(
        "{:<6} {:>12} {:>12}",
        "method", "RT (buckets)", "vs optimal"
    );
    for method in &methods {
        let rt = response_time(method, &region);
        println!(
            "{:<6} {:>12} {:>11.2}x",
            method.name(),
            rt,
            rt as f64 / optimal as f64
        );
    }

    // Where does each bucket of the query go under HCAM?
    let hcam = Hcam::new(&space, m).expect("HCAM applies");
    println!("\nHCAM disk per bucket of the query (rows x cols):");
    for r in 3..=6 {
        let row: Vec<String> = (5..=8)
            .map(|c| format!("{}", hcam.disk_of(&[r, c]).0))
            .collect();
        println!("  {}", row.join(" "));
    }

    // The materialized view gives load statistics for the whole relation.
    let map = AllocationMap::from_method(&space, &hcam).expect("materializable");
    let stats = map.load_stats();
    println!(
        "\nHCAM static load: min {} / max {} buckets per disk (imbalance {:.3})",
        stats.min,
        stats.max,
        stats.imbalance()
    );
}
