//! Skewed data: why the grid partitioning itself matters.
//!
//! Declustering spreads *buckets* over disks — but if the partitioning
//! puts most records into a few buckets, no bucket-level method can save
//! the workload. This example loads a Zipf-skewed relation two ways
//! (uniform cuts vs equi-depth cuts from a sample) and shows that the
//! equi-depth grid keeps record-level disk loads balanced under the same
//! declustering method.
//!
//! ```text
//! cargo run --release --example skewed_data
//! ```

use decluster::grid::{AttributeDomain, GridSchema, Partitioning, Record, Value};
use decluster::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a Zipf-ish value in `0..n` (mass concentrated near 0).
fn zipfish(rng: &mut StdRng, n: i64) -> i64 {
    let u: f64 = rng.gen_range(0.0f64..1.0);
    ((n as f64).powf(u) - 1.0).round() as i64
}

fn main() {
    let n_records = 200_000;
    let domain_max = 9_999i64;
    let d = 16u32;
    let m = 8u32;
    let mut rng = StdRng::seed_from_u64(42);

    // The relation: (customer_id, order_total), both skewed toward small
    // values, as real transaction data is.
    let records: Vec<Record> = (0..n_records)
        .map(|_| {
            Record::new(vec![
                Value::Int(zipfish(&mut rng, domain_max + 1)),
                Value::Int(zipfish(&mut rng, domain_max + 1)),
            ])
        })
        .collect();

    let attributes = || {
        vec![
            AttributeDomain::int("customer_id", 0, domain_max),
            AttributeDomain::int("order_total", 0, domain_max),
        ]
    };

    // Grid 1: uniform cuts over the domain.
    let uniform = GridSchema::uniform(attributes(), d).expect("uniform schema");

    // Grid 2: equi-depth cuts from a 10k-record sample.
    let sample: Vec<Value> = records
        .iter()
        .take(10_000)
        .map(|r| r.value(0).clone())
        .collect();
    let sample2: Vec<Value> = records
        .iter()
        .take(10_000)
        .map(|r| r.value(1).clone())
        .collect();
    let equi = GridSchema::new(
        attributes(),
        vec![
            Partitioning::equi_depth(sample, d).expect("equi-depth"),
            Partitioning::equi_depth(sample2, d).expect("equi-depth"),
        ],
    )
    .expect("equi-depth schema");

    for (label, schema) in [("uniform cuts", &uniform), ("equi-depth cuts", &equi)] {
        let space = schema.space().clone();
        let hcam = Hcam::new(&space, m).expect("hcam builds");
        // Record-level load: how many records each disk ends up holding.
        let mut per_disk = vec![0u64; m as usize];
        for record in &records {
            let bucket = schema.bucket_of(record).expect("record routes");
            per_disk[hcam.disk_of(bucket.as_slice()).index()] += 1;
        }
        let max = *per_disk.iter().max().expect("disks exist");
        let min = *per_disk.iter().min().expect("disks exist");
        let mean = n_records as f64 / f64::from(m);
        println!("{label:>16}: records/disk min {min} max {max} (ideal {mean:.0})");
        println!("{:>16}  per-disk: {per_disk:?}", "");
    }

    println!(
        "\nSame records, same declustering method - only the partitioning
changed. Equi-depth cuts keep the record-level load near the ideal even
under heavy skew, which is why grid files re-fit their partitionings to
the data distribution."
    );
}
