//! A guided tour of the paper's findings, each demonstrated live on a
//! small configuration (seconds of compute).
//!
//! ```text
//! cargo run --release --example paper_tour
//! ```

use decluster::prelude::*;
use decluster::sim::workload::SizeSweep;
use decluster::theory::impossibility::demonstrate;
use decluster::theory::strict;

fn main() {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let m = 16;
    let experiment = Experiment::new(space.clone(), m)
        .with_queries_per_point(400)
        .with_seed(1994);

    println!("== Himatsingka & Srivastava, ICDE 1994 — live tour ==\n");

    // Finding (i): large queries converge.
    let large = experiment
        .run_size_sweep(&SizeSweep::explicit(vec![256, 1024]))
        .expect("sweep runs");
    println!("(i) Large queries: all methods within a few percent of optimal.");
    for s in &large.series {
        println!(
            "    {:5} at area 1024: {:.2} vs optimal {:.0} ({:.3}x)",
            s.name,
            s.means[1],
            large.optimal[1],
            s.means[1] / large.optimal[1]
        );
    }

    // Finding (ii): small queries differ substantially.
    let small = experiment
        .run_size_sweep(&SizeSweep::explicit(vec![4, 16]))
        .expect("sweep runs");
    println!("\n(ii) Small queries: substantial differences (area 16, optimal 1):");
    for s in &small.series {
        println!("    {:5} mean RT {:.2}", s.name, s.means[1]);
    }

    // Finding (iii): shape sensitivity.
    let dm = DiskModulo::new(&space, m).expect("dm");
    let hcam = Hcam::new(&space, m).expect("hcam");
    let square = RangeQuery::new([10, 10], [17, 17])
        .expect("query")
        .region(&space)
        .expect("fits");
    let line = RangeQuery::new([10, 0], [10, 63])
        .expect("query")
        .region(&space)
        .expect("fits");
    println!("\n(iii) Shape flips the ranking (64-bucket queries, optimal 4):");
    println!(
        "    8x8 square: DM {} vs HCAM {}",
        response_time(&dm, &square),
        response_time(&hcam, &square)
    );
    println!(
        "    1x64 line:  DM {} vs HCAM {}",
        response_time(&dm, &line),
        response_time(&hcam, &line)
    );

    // Finding (iv): deviation shrinks with size and dimensionality.
    println!("\n(iv) Deviation factors shrink as queries grow:");
    for s in &small.series {
        let small_f = s.means[0] / small.optimal[0];
        let large_f = large.series_for(&s.name).expect("same methods").means[1] / large.optimal[1];
        println!(
            "    {:5} {:.2}x (area 4) -> {:.3}x (area 1024)",
            s.name, small_f, large_f
        );
    }

    // The theorem.
    println!("\n(v) Strict optimality is impossible beyond 5 disks:");
    for m in 1..=8u32 {
        println!("    {}", demonstrate(m, 500_000_000).summary());
    }
    let lattice_space = GridSpace::new_2d(10, 10).expect("grid");
    let lattice = strict::known_strict_allocation(&lattice_space, 5).expect("M=5 lattice");
    assert!(strict::verify_strictly_optimal(&lattice).is_ok());
    println!("    ((i + 2j) mod 5 verified strictly optimal on 10x10.)");

    println!(
        "\nConclusion (the paper's, executable here): no single method wins;\n\
         use decluster::methods::advise to pick per workload."
    );
}
