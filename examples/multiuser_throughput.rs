//! Multi-user throughput: the declustering choice seen from the
//! concurrent-workload side (Ghandeharizadeh & DeWitt's angle, cited in
//! the paper's related work).
//!
//! A closed loop of clients issues small range queries back-to-back; the
//! disk subsystem serves page batches FCFS. Better declustering keeps all
//! spindles busy: watch throughput and utilization separate the methods
//! as client-count grows.
//!
//! ```text
//! cargo run --release --example multiuser_throughput
//! ```

use decluster::grid::GridDirectory;
use decluster::prelude::*;
use decluster::sim::workload::random_region;
use decluster::sim::{DiskParams, ServeSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 8u32;
    let params = DiskParams::default();

    // 400 small 3x3 queries, uniformly placed.
    let mut rng = StdRng::seed_from_u64(77);
    let queries: Vec<BucketRegion> = (0..400)
        .map(|_| random_region(&mut rng, &space, &[3, 3]).expect("fits"))
        .collect();

    let registry = MethodRegistry::default();
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "method", "clients", "makespan s", "qps", "mean lat ms", "disk util"
    );
    for method in registry.paper_methods(&space, m) {
        let dir = GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice()));
        for clients in [1usize, 4, 16] {
            let report = ServeSpec::closed(clients)
                .run_on(&dir, &params, &queries)
                .expect("the closed spec is valid")
                .report;
            println!(
                "{:<6} {:>8} {:>12.2} {:>12.1} {:>12.2} {:>9.1}%",
                method.name(),
                clients,
                report.makespan_ms / 1000.0,
                report.throughput_qps,
                report.latency.mean,
                report.utilization * 100.0
            );
        }
    }

    println!(
        "\nAt low concurrency the spatial methods' shorter per-query disk
batches win on latency and throughput; at heavy concurrency every
work-conserving allocation saturates the spindles and the methods
converge - the multi-user analogue of the paper's large-query finding."
    );
}
