//! The full pipeline a parallel DBMS would run: discover the partitioning
//! dynamically with a grid file, freeze it into a static schema, pick the
//! declustering from the workload, and serve queries with per-disk I/O
//! accounting.
//!
//! ```text
//! cargo run --release --example adaptive_pipeline
//! ```

use decluster::grid::{AttributeDomain, GridFile, Record, Value, ValueRangeQuery};
use decluster::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(31);

    // Phase 1 - discovery: stream skewed records into a dynamic grid
    // file; splits place cut points where the data actually is.
    let mut gf = GridFile::new(
        vec![
            AttributeDomain::int("account", 0, 999_999),
            AttributeDomain::int("amount_cents", 0, 999_999),
        ],
        64,
    )
    .expect("grid file builds");
    let sample: Vec<Record> = (0..20_000)
        .map(|_| {
            // Account ids cluster low, amounts cluster low: double skew.
            let u: f64 = rng.gen_range(0.0..1.0);
            let account = ((1_000_000f64).powf(u) - 1.0) as i64;
            let v: f64 = rng.gen_range(0.0..1.0);
            let amount = ((1_000_000f64).powf(v) - 1.0) as i64;
            Record::new(vec![Value::Int(account), Value::Int(amount)])
        })
        .collect();
    for r in &sample {
        gf.insert(r.clone()).expect("record in domain");
    }
    println!(
        "grid file after 20k inserts: {:?} cells, {} buckets, scales grew to {} + {} cuts",
        gf.cell_counts(),
        gf.num_buckets(),
        gf.scale(0).len(),
        gf.scale(1).len()
    );

    // Phase 2 - freeze: the grid file's scales become the static schema.
    let schema = gf.to_schema().expect("scales freeze into a schema");
    let space = schema.space().clone();

    // Phase 3 - choose the declustering from a workload sample (small
    // windows over the hot region).
    let m = 8;
    let sample_regions: Vec<BucketRegion> = (0..100)
        .filter_map(|_| {
            let q = ValueRangeQuery::new(vec![
                Some((
                    Value::Int(rng.gen_range(0..1000)),
                    Value::Int(rng.gen_range(1000..20_000)),
                )),
                None,
            ])
            .ok()?;
            schema.region_of(&q).ok()
        })
        .collect();
    let advice = advise(&space, m, &sample_regions).expect("workload non-empty");
    println!(
        "advisor chose {} (ranking {:?})",
        advice.winner,
        advice
            .ranking
            .iter()
            .map(|(n, s)| format!("{n}={s:.2}"))
            .collect::<Vec<_>>()
    );

    // Phase 4 - serve: load the frozen, declustered file and run queries.
    let kind = MethodKind::parse(advice.winner).expect("known method");
    let mut served = DeclusteredFile::create(schema, kind, m).expect("file builds");
    served
        .bulk_load(sample.iter().cloned())
        .expect("records re-load");
    let stats = served.stats();
    println!(
        "serving file: {} records, disk skew {:.3} (1.0 = perfect)",
        stats.records,
        stats.disk_skew()
    );

    let q = ValueRangeQuery::new(vec![
        Some((Value::Int(0), Value::Int(5_000))),
        Some((Value::Int(0), Value::Int(50_000))),
    ])
    .expect("query builds");
    let scan = served.scan(&q).expect("query maps");
    println!(
        "hot-region query: {} records from {} buckets, RT {} vs optimal {} ({:.2}x)",
        scan.records.len(),
        scan.io.buckets_touched,
        scan.io.response_time,
        scan.io.optimal,
        scan.io.deviation_factor()
    );
}
