//! The paper's theorem, live: exhibit strictly optimal allocations where
//! they exist (M ≤ 3 and M = 5) and machine-check that none exists for
//! M = 4 or any M in 6..=10.
//!
//! ```text
//! cargo run --release --example impossibility
//! ```

use decluster::prelude::*;
use decluster::theory::impossibility::demonstrate;
use decluster::theory::search::SearchOutcome;
use decluster::theory::strict;

fn main() {
    println!("Strictly optimal range-query declustering, disk count by disk count:\n");
    for m in 1..=10u32 {
        let d = demonstrate(m, 500_000_000);
        println!("{}", d.summary());
        if let SearchOutcome::Satisfiable(alloc) = &d.outcome {
            print_window(alloc);
        }
    }

    // The lattice constructions scale past the search windows: verify the
    // M = 5 knight's-move lattice on a 12x12 grid against every one of its
    // range queries.
    let space = GridSpace::new_2d(12, 12).expect("valid grid");
    let alloc = strict::known_strict_allocation(&space, 5).expect("M=5 lattice exists");
    match strict::verify_strictly_optimal(&alloc) {
        Ok(()) => println!(
            "\n(i + 2j) mod 5 verified strictly optimal on 12x12: every one of the\n\
             {} range queries meets ceil(|Q|/5) exactly.",
            (12 * 13 / 2) * (12 * 13 / 2)
        ),
        Err(ce) => println!("\nunexpected counterexample: {ce:?}"),
    }
}

fn print_window(alloc: &AllocationMap) {
    let space = alloc.space();
    for r in 0..space.dim(0) {
        let row: Vec<String> = (0..space.dim(1))
            .map(|c| format!("{}", alloc.disk_of(&[r, c]).0))
            .collect();
        println!("      {}", row.join(" "));
    }
}
