//! A demographic-study scenario (one of the data-intensive applications
//! the paper's introduction motivates): a census relation declustered by
//! (age, income), queried with value-level range predicates, and timed on
//! the millisecond-level disk model.
//!
//! ```text
//! cargo run --release --example census_study
//! ```

use decluster::grid::{AttributeDomain, GridDirectory, GridSchema, Record, Value, ValueRangeQuery};
use decluster::prelude::*;
use decluster::sim::{DiskParams, IoSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Schema: age 0..=99, income 0..=200k, each split into 32 partitions.
    let schema = GridSchema::uniform(
        vec![
            AttributeDomain::int("age", 0, 99),
            AttributeDomain::float("income", 0.0, 200_000.0),
        ],
        32,
    )
    .expect("uniform partitioning fits the domains");
    let space = schema.space().clone();
    let m = 8;

    // Load a synthetic population and confirm records route to buckets.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut bucket_population = vec![0u64; space.num_buckets() as usize];
    for _ in 0..100_000 {
        let age = rng.gen_range(0..=99i64);
        let income: f64 = rng.gen_range(0.0..200_000.0);
        let record = Record::new(vec![Value::Int(age), Value::Float(income)]);
        let bucket = schema.bucket_of(&record).expect("record in domain");
        let id = space.linearize(&bucket).expect("bucket in grid");
        bucket_population[id as usize] += 1;
    }
    let occupied = bucket_population.iter().filter(|&&n| n > 0).count();
    println!(
        "Loaded 100k records into {}/{} buckets of the {}x{} grid",
        occupied,
        space.num_buckets(),
        space.dim(0),
        space.dim(1)
    );

    // The analyst's typical queries, in attribute values.
    let queries: Vec<(&str, ValueRangeQuery)> = vec![
        (
            "working-age, middle income",
            ValueRangeQuery::new(vec![
                Some((Value::Int(25), Value::Int(45))),
                Some((Value::Float(40_000.0), Value::Float(80_000.0))),
            ])
            .expect("two attributes"),
        ),
        (
            "retirees, any income",
            ValueRangeQuery::new(vec![Some((Value::Int(65), Value::Int(99))), None])
                .expect("two attributes"),
        ),
        (
            "top earners, any age",
            ValueRangeQuery::new(vec![
                None,
                Some((Value::Float(150_000.0), Value::Float(200_000.0))),
            ])
            .expect("two attributes"),
        ),
    ];

    // Compare the paper's methods under the physical disk model.
    let io = IoSimulator::new(DiskParams::default());
    let registry = MethodRegistry::default();
    println!(
        "\n{:<28} {:>8} {:>6}  response ms per method",
        "query", "buckets", "OPT"
    );
    for (label, query) in &queries {
        let region = schema.region_of(query).expect("query maps to grid");
        let opt = optimal_response_time(region.num_buckets(), m);
        let mut cells = Vec::new();
        for method in registry.paper_methods(&space, m) {
            let dir = GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice()));
            let ms = io.query_response_ms(&dir, &region);
            cells.push(format!("{}={:.1}ms", method.name(), ms));
        }
        println!(
            "{:<28} {:>8} {:>6}  {}",
            label,
            region.num_buckets(),
            opt,
            cells.join("  ")
        );
    }

    println!(
        "\nNote: the row/column scans favour DM (provably optimal for
partial-match-shaped queries), while the compact rectangle favours the
spatial methods - the paper's conclusion that no single method wins."
    );
}
