//! End-to-end equivalence tests for the kernel-backed multi-user engine:
//! the public closed/open/degraded loops must produce bit-identical
//! reports to an independent reference loop that materializes each
//! query's I/O plan and reads counts off its group lengths — the
//! pre-rewire data path. This pins the rewire as a pure data-path
//! optimization: same queueing, same service model, same bytes.

use decluster::grid::{BucketRegion, GridDirectory, GridSpace, IoPlan};
use decluster::prelude::*;
use decluster::sim::workload::random_region;
use decluster::sim::{
    load_sweep, poisson_arrivals, DiskParams, LoopScratch, MultiUserEngine, ServeSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: u32 = 8;

fn directory() -> (GridSpace, GridDirectory) {
    let space = GridSpace::new_2d(32, 32).unwrap();
    let hcam = Hcam::new(&space, M).unwrap();
    let dir = GridDirectory::build(space.clone(), M, |b| hcam.disk_of(b.as_slice()));
    (space, dir)
}

/// A mixed-size query stream (areas 1..64) placed deterministically.
fn query_stream(space: &GridSpace, n: usize) -> Vec<BucketRegion> {
    let shapes: [[u32; 2]; 5] = [[1, 1], [2, 2], [2, 8], [4, 4], [8, 8]];
    let mut rng = StdRng::seed_from_u64(77);
    (0..n)
        .map(|i| random_region(&mut rng, space, &shapes[i % shapes.len()]).unwrap())
        .collect()
}

/// The pre-rewire closed loop: one materialized `IoPlan` per query,
/// per-disk counts taken as group lengths, identical queueing to the
/// engine. Returns `(makespan_ms, latencies)`.
fn reference_closed_loop(
    dir: &GridDirectory,
    params: &DiskParams,
    queries: &[BucketRegion],
    clients: usize,
) -> (f64, Vec<f64>) {
    let loads = dir.load_vector();
    let m = loads.len();
    let mut plan = IoPlan::new();
    let mut disk_free_at = vec![0.0f64; m];
    let mut clients_ready = vec![0.0f64; clients];
    let mut latencies = Vec::new();
    let mut makespan = 0.0f64;
    for region in queries {
        let (slot, _) = clients_ready
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let issue_at = clients_ready[slot];
        dir.io_plan_into(region, &mut plan);
        let mut completion = issue_at;
        for d in 0..m {
            let count = plan.disk_pages(d).len() as u64;
            if count == 0 {
                continue;
            }
            let start = issue_at.max(disk_free_at[d]);
            let service = params.batch_ms_counts(count, loads[d]);
            disk_free_at[d] = start + service;
            completion = completion.max(start + service);
        }
        latencies.push(completion - issue_at);
        makespan = makespan.max(completion);
        clients_ready[slot] = completion;
    }
    (makespan, latencies)
}

#[test]
fn closed_loop_is_bit_identical_to_materialized_plan_loop() {
    let (space, dir) = directory();
    let params = DiskParams::default();
    let queries = query_stream(&space, 300);
    for clients in [1, 3, 8] {
        let (ref_makespan, ref_latencies) = reference_closed_loop(&dir, &params, &queries, clients);
        let report = ServeSpec::closed(clients)
            .run_on(&dir, &params, &queries)
            .unwrap()
            .report;
        assert_eq!(
            report.makespan_ms.to_bits(),
            ref_makespan.to_bits(),
            "makespan differs at {clients} clients"
        );
        let ref_mean = ref_latencies.iter().sum::<f64>() / ref_latencies.len() as f64;
        assert_eq!(
            report.latency.mean.to_bits(),
            ref_mean.to_bits(),
            "mean latency differs at {clients} clients"
        );
        let ref_qps = queries.len() as f64 / (ref_makespan / 1000.0);
        assert_eq!(report.throughput_qps.to_bits(), ref_qps.to_bits());
    }
}

#[test]
fn open_loop_is_bit_identical_to_materialized_plan_loop() {
    let (space, dir) = directory();
    let params = DiskParams::default();
    let queries = query_stream(&space, 200);
    let mut rng = StdRng::seed_from_u64(5);
    let arrivals = poisson_arrivals(&mut rng, queries.len(), 80.0);
    // Reference: same loop but issue times come from the arrival vector.
    let loads = dir.load_vector();
    let m = loads.len();
    let mut plan = IoPlan::new();
    let mut disk_free_at = vec![0.0f64; m];
    let mut makespan = 0.0f64;
    let mut sum = 0.0f64;
    for (region, &issue_at) in queries.iter().zip(&arrivals) {
        dir.io_plan_into(region, &mut plan);
        let mut completion = issue_at;
        for d in 0..m {
            let count = plan.disk_pages(d).len() as u64;
            if count == 0 {
                continue;
            }
            let start = issue_at.max(disk_free_at[d]);
            let service = params.batch_ms_counts(count, loads[d]);
            disk_free_at[d] = start + service;
            completion = completion.max(start + service);
        }
        sum += completion - issue_at;
        makespan = makespan.max(completion);
    }
    let engine = MultiUserEngine::new(&dir);
    let report = engine.open_loop_obs(
        &params,
        &queries,
        &arrivals,
        &decluster::obs::Obs::disabled(),
        &mut LoopScratch::new(),
    );
    assert_eq!(report.makespan_ms.to_bits(), makespan.to_bits());
    let ref_mean = sum / queries.len() as f64;
    assert_eq!(report.latency.mean.to_bits(), ref_mean.to_bits());
}

#[test]
fn engine_scratch_reuse_across_workloads_changes_nothing() {
    let (space, dir) = directory();
    let params = DiskParams::default();
    let engine = MultiUserEngine::new(&dir);
    assert!(engine.kernel_backed());
    let obs = decluster::obs::Obs::disabled();
    let big = query_stream(&space, 400);
    let small = query_stream(&space, 50);
    // One scratch serving runs of different sizes, interleaved, must
    // reproduce fresh-scratch results bit for bit.
    let mut shared = LoopScratch::new();
    let _warm = engine.closed_loop_obs(&params, &big, 8, &obs, &mut shared);
    let small_shared = engine.closed_loop_obs(&params, &small, 2, &obs, &mut shared);
    let big_shared = engine.closed_loop_obs(&params, &big, 8, &obs, &mut shared);
    let small_fresh = engine.closed_loop_obs(&params, &small, 2, &obs, &mut LoopScratch::new());
    let big_fresh = engine.closed_loop_obs(&params, &big, 8, &obs, &mut LoopScratch::new());
    assert_eq!(
        small_shared.makespan_ms.to_bits(),
        small_fresh.makespan_ms.to_bits()
    );
    assert_eq!(
        small_shared.latency.mean.to_bits(),
        small_fresh.latency.mean.to_bits()
    );
    assert_eq!(
        big_shared.makespan_ms.to_bits(),
        big_fresh.makespan_ms.to_bits()
    );
    assert_eq!(
        big_shared.latency.mean.to_bits(),
        big_fresh.latency.mean.to_bits()
    );
}

#[test]
fn load_sweep_matches_individual_open_loop_runs() {
    let (space, dir) = directory();
    let params = DiskParams::default();
    let queries = query_stream(&space, 120);
    let rates = [20.0, 150.0];
    let points = load_sweep(&[("HCAM", &dir)], &params, &queries, &rates, 9);
    assert_eq!(points.len(), 2);
    let engine = MultiUserEngine::new(&dir);
    for (point, &rate) in points.iter().zip(&rates) {
        let mut rng = StdRng::seed_from_u64(9);
        let arrivals = poisson_arrivals(&mut rng, queries.len(), rate);
        let solo = engine.open_loop_obs(
            &params,
            &queries,
            &arrivals,
            &decluster::obs::Obs::disabled(),
            &mut LoopScratch::new(),
        );
        assert_eq!(point.methods.len(), 1);
        assert_eq!(point.methods[0].name, "HCAM");
        assert_eq!(
            point.methods[0].mean_latency_ms.to_bits(),
            solo.latency.mean.to_bits()
        );
        assert_eq!(
            point.methods[0].utilization.to_bits(),
            solo.utilization.to_bits()
        );
        assert_eq!(point.methods[0].tail_ms, solo.tail);
    }
}

/// The pre-rewire degraded loop, reimplemented over materialized plans:
/// same chained failover, same timeout charging, same floats. Pins the
/// event-heap rewrite of the closed degraded loop
/// (`ServeSpec::closed(..).faults(..)`).
#[test]
fn degraded_loop_is_bit_identical_to_materialized_plan_loop() {
    use decluster::sim::faults::{DiskState, FaultSchedule, RetryPolicy};
    let (space, dir) = directory();
    let params = DiskParams::default();
    let queries = query_stream(&space, 250);
    // Disk 2 dies, disk 5 grays out, and from t=100 disk 3 dies too —
    // disk 2's chain successor — so late queries touching disk 2 are
    // unavailable while disk-3-only batches fail over to disk 4.
    let schedule = FaultSchedule::healthy(M)
        .fail_stop(2, 40)
        .unwrap()
        .fail_stop(3, 100)
        .unwrap()
        .slow(5, 3.0, 20, 160)
        .unwrap();
    let policy = RetryPolicy::default();
    let timeout_ms = policy.detection_units() as f64 * params.transfer_ms;
    let clients = 4;

    // Reference loop: materialized plans, per-query fault-aware fan-out.
    let loads = dir.load_vector();
    let m = loads.len();
    let mut plan = IoPlan::new();
    let mut disk_free_at = vec![0.0f64; m];
    let mut clients_ready = vec![0.0f64; clients];
    let mut latencies = Vec::new();
    let (mut unavailable, mut failover) = (0usize, 0usize);
    let mut makespan = 0.0f64;
    for (t, region) in queries.iter().enumerate() {
        let (slot, _) = clients_ready
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let issue_at = clients_ready[slot];
        dir.io_plan_into(region, &mut plan);
        let t = t as u64;
        if (0..m).any(|d| !plan.disk_pages(d).is_empty() && schedule.chain_dead(d as u32, t)) {
            unavailable += 1;
            continue; // the client is ready again at issue_at
        }
        let mut completion = issue_at;
        for d in 0..m {
            let count = plan.disk_pages(d).len() as u64;
            if count == 0 {
                continue;
            }
            match schedule.state_at(d as u32, t) {
                state @ (DiskState::Up | DiskState::Slow(_)) => {
                    let start = issue_at.max(disk_free_at[d]);
                    let service = params.batch_ms_counts(count, loads[d]) * state.latency_factor();
                    disk_free_at[d] = start + service;
                    completion = completion.max(start + service);
                }
                DiskState::Down => {
                    let b = (d + 1) % m;
                    let start = (issue_at + timeout_ms).max(disk_free_at[b]);
                    let service = params.batch_ms_counts(count, loads[b])
                        * schedule.state_at(b as u32, t).latency_factor();
                    disk_free_at[b] = start + service;
                    completion = completion.max(start + service);
                    failover += 1;
                }
            }
        }
        latencies.push(completion - issue_at);
        makespan = makespan.max(completion);
        clients_ready[slot] = completion;
    }

    let run = ServeSpec::closed(clients)
        .retry(policy)
        .faults(schedule)
        .run_on(&dir, &params, &queries)
        .unwrap();
    let avail = run.availability.expect("degraded runs report availability");
    assert!(
        unavailable > 0 && failover > 0,
        "schedule exercises both paths"
    );
    assert_eq!(avail.served, latencies.len() as u64);
    assert_eq!(avail.lost, unavailable as u64);
    assert_eq!(avail.failovers, failover as u64);
    assert_eq!(
        run.report.makespan_ms.to_bits(),
        makespan.to_bits(),
        "degraded makespan differs from the materialized-plan loop"
    );
    let ref_mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    assert_eq!(run.report.latency.mean.to_bits(), ref_mean.to_bits());
}

/// The serve loop over an arrival stream is the open loop, expressed as
/// events: identical service model at issue time, so the aggregate
/// report must match the engine's open loop bit for bit.
#[test]
fn serve_report_is_bit_identical_to_open_loop() {
    use decluster::sim::sharded_arrivals;
    use decluster::sim::workload::InterArrival;
    let (space, dir) = directory();
    let params = DiskParams::default();
    let queries = query_stream(&space, 240);
    let obs = decluster::obs::Obs::disabled();
    let arrivals = sharded_arrivals(
        11,
        queries.len(),
        InterArrival::Poisson { rate_qps: 60.0 },
        1,
        &obs,
    );
    let engine = MultiUserEngine::new(&dir);
    let mut ls = LoopScratch::new();
    // Sampling on: mid-run snapshots must not perturb the report.
    let serve = ServeSpec::open(60.0)
        .sampling(500.0)
        .run_with_arrivals(&engine, &params, &queries, &arrivals, &obs, &mut ls)
        .unwrap();
    let open = engine.open_loop_obs(&params, &queries, &arrivals, &obs, &mut LoopScratch::new());
    assert_eq!(
        serve.report.makespan_ms.to_bits(),
        open.makespan_ms.to_bits()
    );
    assert_eq!(
        serve.report.latency.mean.to_bits(),
        open.latency.mean.to_bits()
    );
    assert_eq!(serve.report.tail, open.tail);
    assert_eq!(
        serve.report.utilization.to_bits(),
        open.utilization.to_bits()
    );
    assert_eq!(serve.events, 2 * queries.len() as u64);
    assert!(serve.peak_in_flight >= 1);
    assert!(!ls.samples().is_empty());
}
