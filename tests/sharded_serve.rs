//! Property test for the sharded serving path: on random `ServeSpec`s —
//! plain open-loop, shared scans (batch window + replicas + routing
//! policy), and fault-injected runs — a sharded run must equal the
//! serial run in every observable: the aggregate report, the event-loop
//! counters, the mid-run samples, and the rendered metrics snapshot,
//! for shard counts S in {1, 2, 7, M} and for inline as well as
//! threaded shard walking. The fault-injected path has global feedback
//! and falls back to the serial core, so its equality is trivial by
//! construction — it is still generated here so the shard-count
//! validation and dispatch stay covered on every mode.

use decluster::grid::{BucketRegion, GridDirectory, GridSpace};
use decluster::obs::{MetricsRecorder, Obs};
use decluster::prelude::*;
use decluster::sim::workload::random_region;
use decluster::sim::{
    DiskParams, FaultSchedule, LoopScratch, MultiUserEngine, ReplicaPolicy, ServeRun, ServeSample,
    ServeSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// How a generated case exercises the spec surface.
#[derive(Clone, Debug)]
enum Mode {
    /// Healthy open loop: the parallel Stage A/B/C path proper.
    Plain,
    /// Shared scans: batch window, optional replicas, routing policy.
    Shared {
        window_ms: f64,
        replicas: u32,
        policy: ReplicaPolicy,
    },
    /// Fault injection: serial-fallback path, shards still validated.
    Faults {
        replicas: u32,
        policy: ReplicaPolicy,
        from: u64,
        until: u64,
    },
}

#[derive(Clone, Debug)]
struct Case {
    /// Disk count, at least 7 so S = 7 always passes validation.
    m: u32,
    /// Seed for the random query rectangles.
    query_seed: u64,
    /// Inter-arrival gaps, ms; prefix-summed into arrival times.
    gaps: Vec<f64>,
    /// Mid-run sampling period, when on.
    sampling: Option<f64>,
    mode: Mode,
    /// Worker threads for the sharded runs (1 = inline walk).
    threads: usize,
}

fn policy() -> impl Strategy<Value = ReplicaPolicy> {
    prop_oneof![
        Just(ReplicaPolicy::PrimaryOnly),
        Just(ReplicaPolicy::Spread),
        Just(ReplicaPolicy::NearestFreeQueue),
        Just(ReplicaPolicy::RoundRobin),
    ]
}

fn mode() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::Plain),
        (1.0f64..24.0, 0u32..=2, policy()).prop_map(|(window_ms, replicas, policy)| {
            Mode::Shared {
                window_ms,
                replicas,
                policy,
            }
        }),
        (1u32..=2, policy(), 0u64..40, 10u64..80).prop_map(|(replicas, policy, from, dur)| {
            Mode::Faults {
                replicas,
                policy,
                from,
                until: from + dur,
            }
        }),
    ]
}

fn case() -> impl Strategy<Value = Case> {
    (7u32..=12, 12usize..=48).prop_flat_map(|(m, n)| {
        (
            Just(m),
            any::<u64>(),
            prop::collection::vec(0.0f64..4.0, n..n + 1),
            prop_oneof![Just(None), (4.0f64..48.0).prop_map(Some)],
            mode(),
            prop_oneof![Just(1usize), Just(3usize)],
        )
            .prop_map(|(m, query_seed, gaps, sampling, mode, threads)| Case {
                m,
                query_seed,
                gaps,
                sampling,
                mode,
                threads,
            })
    })
}

/// Mixed rectangle shapes covering the kernel's per-shape plan cache.
const SHAPES: [[u32; 2]; 5] = [[1, 1], [2, 2], [2, 8], [4, 4], [6, 6]];

fn spec_for(case: &Case, m: u32) -> ServeSpec {
    // The open-mode rate is unused by `run_with_arrivals` (arrivals are
    // explicit), but the mode still selects the streaming dispatch.
    let mut spec = ServeSpec::open(100.0).seed(7);
    if let Some(every_ms) = case.sampling {
        spec = spec.sampling(every_ms);
    }
    match case.mode {
        Mode::Plain => spec,
        Mode::Shared {
            window_ms,
            replicas,
            policy,
        } => spec.share(window_ms).replicas(replicas).policy(policy),
        Mode::Faults {
            replicas,
            policy,
            from,
            until,
        } => spec.replicas(replicas).policy(policy).faults(
            FaultSchedule::healthy(m)
                .transient(3, from, until)
                .expect("disk 3 exists on every generated array"),
        ),
    }
}

/// Runs one spec and flattens every observable into comparable form:
/// the full `ServeRun` (Debug covers every field, and f64's shortest
/// round-trip formatting distinguishes distinct bit patterns), the
/// mid-run samples, and the deterministic metrics snapshot.
fn observe(
    spec: &ServeSpec,
    engine: &MultiUserEngine,
    params: &DiskParams,
    queries: &[BucketRegion],
    arrivals: &[f64],
) -> (ServeRun, Vec<ServeSample>, String) {
    let rec = Arc::new(MetricsRecorder::new());
    let obs = Obs::new(rec.clone());
    let mut ls = LoopScratch::new();
    let run = spec
        .run_with_arrivals(engine, params, queries, arrivals, &obs, &mut ls)
        .expect("every generated spec is valid");
    let metrics = rec.registry().snapshot().render_text();
    (run, ls.samples().to_vec(), metrics)
}

/// Deterministic pin of the plan-cache thrash regime: 40 distinct query
/// shapes exceed the 32-slot `PlanCache`, so the serial loop evicts on
/// nearly every arrival and the sharded path's LRU replay must
/// reproduce the hit/miss counters (surfaced in the metrics snapshot)
/// through its cycle detection rather than the no-eviction fast path.
#[test]
fn sharded_metrics_survive_plan_cache_thrash() {
    let space = GridSpace::new_2d(32, 32).unwrap();
    let m = 8u32;
    let hcam = Hcam::new(&space, m).unwrap();
    let dir = GridDirectory::build(space.clone(), m, |b| hcam.disk_of(b.as_slice()));
    let engine = MultiUserEngine::new(&dir);
    let params = DiskParams::default();

    // h in 1..=5 crossed with w in 1..=8: 40 distinct shapes, cycled
    // round-robin — the classic LRU worst case for a 32-slot cache.
    let mut rng = StdRng::seed_from_u64(11);
    let queries: Vec<BucketRegion> = (0..200)
        .map(|i| {
            let shape = [1 + (i / 8) as u32 % 5, 1 + i as u32 % 8];
            random_region(&mut rng, &space, &shape).unwrap()
        })
        .collect();
    let arrivals: Vec<f64> = (0..4000).map(|i| i as f64 * 0.4).collect();

    let spec = ServeSpec::open(100.0).sampling(32.0).seed(7);
    let (serial_run, serial_samples, serial_metrics) =
        observe(&spec, &engine, &params, &queries, &arrivals);
    assert!(
        serial_metrics.contains("kernel.shape_cache_misses"),
        "thrash run must surface plan-cache counters"
    );
    for (shards, threads) in [(2usize, 1usize), (8, 1), (8, 3)] {
        let sharded = spec.clone().shards(shards).threads(threads);
        let (run, samples, metrics) = observe(&sharded, &engine, &params, &queries, &arrivals);
        assert_eq!(
            format!("{:?}", run.report),
            format!("{:?}", serial_run.report),
            "report diverged at {shards} shards"
        );
        assert_eq!(run.events, serial_run.events);
        assert_eq!(samples, serial_samples);
        assert_eq!(
            metrics, serial_metrics,
            "metrics diverged at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_runs_equal_serial_runs(case in case()) {
        let space = GridSpace::new_2d(24, 24).unwrap();
        let hcam = Hcam::new(&space, case.m).unwrap();
        let dir = GridDirectory::build(space.clone(), case.m, |b| hcam.disk_of(b.as_slice()));
        let engine = MultiUserEngine::new(&dir);
        let params = DiskParams::default();

        let mut rng = StdRng::seed_from_u64(case.query_seed);
        let queries: Vec<BucketRegion> = (0..case.gaps.len())
            .map(|i| random_region(&mut rng, &space, &SHAPES[i % SHAPES.len()]).unwrap())
            .collect();
        let mut t = 0.0f64;
        let arrivals: Vec<f64> = case
            .gaps
            .iter()
            .map(|g| {
                t += g;
                t
            })
            .collect();

        let spec = spec_for(&case, case.m);
        let (serial_run, serial_samples, serial_metrics) =
            observe(&spec, &engine, &params, &queries, &arrivals);

        for shards in [1usize, 2, 7, case.m as usize] {
            let sharded = spec.clone().shards(shards).threads(case.threads);
            let (run, samples, metrics) =
                observe(&sharded, &engine, &params, &queries, &arrivals);

            // Report floats bit for bit (Debug is a faithful f64 witness).
            prop_assert_eq!(
                format!("{:?}", run.report),
                format!("{:?}", serial_run.report),
                "report diverged at {} shards, {} threads",
                shards,
                case.threads
            );
            prop_assert_eq!(run.report.makespan_ms.to_bits(), serial_run.report.makespan_ms.to_bits());
            prop_assert_eq!(run.report.latency.mean.to_bits(), serial_run.report.latency.mean.to_bits());
            prop_assert_eq!(run.report.utilization.to_bits(), serial_run.report.utilization.to_bits());
            // Event-loop counters and optional accounting.
            prop_assert_eq!(run.events, serial_run.events);
            prop_assert_eq!(run.pages, serial_run.pages);
            prop_assert_eq!(run.peak_in_flight, serial_run.peak_in_flight);
            prop_assert_eq!(run.samples, serial_run.samples);
            prop_assert_eq!(run.availability, serial_run.availability);
            prop_assert_eq!(run.sharing, serial_run.sharing);
            // Mid-run samples element-wise.
            prop_assert_eq!(&samples, &serial_samples);
            // Rendered metrics snapshot byte for byte.
            prop_assert_eq!(&metrics, &serial_metrics, "metrics diverged at {} shards", shards);
        }
    }
}
