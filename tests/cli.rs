//! Smoke tests for the two binaries: the `declust` CLI and the `repro`
//! harness. Cargo builds the binaries for integration tests and exposes
//! their paths via `CARGO_BIN_EXE_*`.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const DECLUST: &str = env!("CARGO_BIN_EXE_declust");
const REPRO: &str = env!("CARGO_BIN_EXE_repro");

#[test]
fn declust_methods_lists_everything() {
    let (ok, stdout, _) = run(DECLUST, &["methods"]);
    assert!(ok);
    for name in ["DM", "FX", "ECC", "HCAM", "ZCAM", "GrayCAM", "RR", "RND"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn declust_evaluate_reports_metrics() {
    let (ok, stdout, _) = run(
        DECLUST,
        &[
            "evaluate",
            "--grid",
            "16x16",
            "--disks",
            "8",
            "--method",
            "hcam",
            "--shape",
            "2x2",
            "--queries",
            "50",
        ],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("mean RT"));
    assert!(stdout.contains("static load"));
}

#[test]
fn declust_advise_ranks_methods() {
    let (ok, stdout, _) = run(
        DECLUST,
        &[
            "advise",
            "--grid",
            "16x16",
            "--disks",
            "8",
            "--shape",
            "2x2",
            "--queries",
            "50",
        ],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("->"));
    assert!(stdout.contains("DM"));
}

#[test]
fn declust_profile_is_exact() {
    let (ok, stdout, _) = run(
        DECLUST,
        &[
            "profile", "--grid", "16x16", "--disks", "16", "--method", "DM", "--shape", "4x4",
        ],
    );
    assert!(ok, "{stdout}");
    // DM on 4x4 with M=16: best = worst = 4 on every placement.
    assert!(stdout.contains("best 4  worst 4"), "{stdout}");
}

#[test]
fn declust_theorem_prints_verdicts() {
    let (ok, stdout, _) = run(DECLUST, &["theorem", "--max-m", "6"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("M =  5"));
    assert!(stdout.contains("EXISTS"));
    assert!(stdout.contains("IMPOSSIBLE"));
}

#[test]
fn declust_rejects_bad_input() {
    let (ok, _, stderr) = run(DECLUST, &["evaluate", "--grid", "banana"]);
    assert!(!ok);
    assert!(stderr.contains("usage") || stderr.contains("error"));
    let (ok, _, _) = run(DECLUST, &["no-such-command"]);
    assert!(!ok);
    let (ok, _, _) = run(DECLUST, &[]);
    assert!(!ok);
}

#[test]
fn repro_quick_t1_runs() {
    let (ok, stdout, _) = run(REPRO, &["t1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("violated"));
    // The theorems hold: zero violations for DM and FX.
    for line in stdout.lines() {
        if line.starts_with("DM") || line.starts_with("FX") {
            let fields: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(fields[3], "0", "violations in {line}");
        }
    }
}

#[test]
fn repro_rejects_unknown_experiment() {
    let (ok, _, stderr) = run(REPRO, &["e99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown"));
}

#[test]
fn repro_quick_e2_has_all_methods() {
    let (ok, stdout, _) = run(REPRO, &["e2", "--quick"]);
    assert!(ok, "{stdout}");
    for name in ["DM", "FX", "ECC", "HCAM", "OPT"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn repro_rejects_zero_threads() {
    let (ok, _, stderr) = run(REPRO, &["e1", "--quick", "--threads", "0"]);
    assert!(!ok);
    assert_eq!(stderr.lines().count(), 1, "one-line error, got:\n{stderr}");
    assert!(stderr.contains("--threads"), "{stderr}");
}

#[test]
fn repro_rejects_malformed_fault_specs() {
    for spec in [
        "garbage",
        "fail:99@1",
        "slow:0x0.5@0..9",
        "transient:1@9..3",
    ] {
        let (ok, _, stderr) = run(REPRO, &["faults", "--quick", "--faults", spec]);
        assert!(!ok, "spec {spec:?} should be rejected");
        assert_eq!(
            stderr.lines().count(),
            1,
            "one-line error for {spec:?}, got:\n{stderr}"
        );
        assert!(stderr.contains("bad fault spec"), "{stderr}");
    }
}

#[test]
fn repro_rejects_unknown_method_names() {
    let (ok, _, stderr) = run(REPRO, &["faults", "--quick", "--method", "NOPE"]);
    assert!(!ok);
    assert_eq!(stderr.lines().count(), 1, "one-line error, got:\n{stderr}");
    assert!(stderr.contains("unknown method"), "{stderr}");
    // A known method that the fault workload does not run is also a
    // one-line error, not an empty table.
    let (ok, _, stderr) = run(REPRO, &["faults", "--quick", "--method", "RND"]);
    assert!(!ok);
    assert!(
        stderr.contains("not part of the fault workload"),
        "{stderr}"
    );
}

#[test]
fn repro_faults_reports_degraded_mode_and_rebuild() {
    let (ok, stdout, _) = run(
        REPRO,
        &["faults", "--quick", "--faults", "fail:3@50,slow:7x2@0..25"],
    );
    assert!(ok, "{stdout}");
    for needle in [
        "DM+chain",
        "HCAM+chain",
        "avail %",
        "Rebuild of disk 3",
        "interference",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn repro_rejects_zero_clients() {
    let (ok, _, stderr) = run(REPRO, &["serve", "--quick", "--clients", "0"]);
    assert!(!ok);
    assert_eq!(stderr.lines().count(), 1, "one-line error, got:\n{stderr}");
    assert!(stderr.contains("--clients"), "{stderr}");
}

#[test]
fn repro_rejects_nonpositive_rate() {
    for rate in ["0", "-3", "NaN"] {
        let (ok, _, stderr) = run(REPRO, &["serve", "--quick", "--rate", rate]);
        assert!(!ok, "rate {rate:?} should be rejected");
        assert_eq!(
            stderr.lines().count(),
            1,
            "one-line error for {rate:?}, got:\n{stderr}"
        );
        assert!(stderr.contains("--rate"), "{stderr}");
    }
}

#[test]
fn repro_serve_reports_a_knee_per_method() {
    let (ok, stdout, _) = run(REPRO, &["serve", "--quick", "--clients", "800"]);
    assert!(ok, "{stdout}");
    for name in ["DM", "FX", "ECC", "HCAM"] {
        assert!(
            stdout.contains(&format!("knee {name}")),
            "missing knee line for {name} in:\n{stdout}"
        );
    }
    // Restricting to one method keeps that column bit-identical.
    let (ok, only, _) = run(
        REPRO,
        &["serve", "--quick", "--clients", "800", "--method", "HCAM"],
    );
    assert!(ok, "{only}");
    let full_knee = stdout
        .lines()
        .find(|l| l.starts_with("knee HCAM"))
        .expect("knee line");
    assert!(only.contains(full_knee), "{only}");
    // A method outside the sweep is a one-line error.
    let (ok, _, stderr) = run(REPRO, &["serve", "--quick", "--method", "RND"]);
    assert!(!ok);
    assert!(stderr.contains("not part of the serve sweep"), "{stderr}");
}

#[test]
fn repro_serve_is_thread_count_invariant() {
    let (ok1, t1, _) = run(
        REPRO,
        &["serve", "--quick", "--clients", "800", "--threads", "1"],
    );
    let (ok8, t8, _) = run(
        REPRO,
        &["serve", "--quick", "--clients", "800", "--threads", "8"],
    );
    assert!(ok1 && ok8);
    assert_eq!(t1, t8, "serve tables differ between --threads 1 and 8");
}

#[test]
fn repro_rejects_bad_replica_counts() {
    for r in ["0", "16", "banana"] {
        let (ok, _, stderr) = run(REPRO, &["avail", "--quick", "--replicas", r]);
        assert!(!ok, "replicas {r:?} should be rejected");
        assert_eq!(
            stderr.lines().count(),
            1,
            "one-line error for {r:?}, got:\n{stderr}"
        );
        assert!(stderr.contains("--replicas"), "{stderr}");
    }
}

#[test]
fn repro_rejects_unknown_policy_names() {
    let (ok, _, stderr) = run(REPRO, &["avail", "--quick", "--policy", "bogus"]);
    assert!(!ok);
    assert_eq!(stderr.lines().count(), 1, "one-line error, got:\n{stderr}");
    assert!(stderr.contains("unknown replica policy"), "{stderr}");
    // The error names every accepted policy so the fix is self-evident.
    for name in ["primary", "failover", "nearest", "roundrobin"] {
        assert!(stderr.contains(name), "missing {name} in:\n{stderr}");
    }
    // A method outside the sweep is a one-line error, not an empty table.
    let (ok, _, stderr) = run(REPRO, &["avail", "--quick", "--method", "RND"]);
    assert!(!ok);
    assert!(stderr.contains("not part of the avail sweep"), "{stderr}");
}

#[test]
fn repro_avail_narrows_to_one_replica_and_policy() {
    let (ok, stdout, _) = run(
        REPRO,
        &[
            "avail",
            "--quick",
            "--clients",
            "600",
            "--replicas",
            "2",
            "--policy",
            "failover",
        ],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("failover"), "{stdout}");
    for hidden in ["roundrobin", "nearest"] {
        assert!(
            !stdout.contains(hidden),
            "policy filter leaked {hidden}:\n{stdout}"
        );
    }
    // The three default schedules each keep exactly one row.
    for schedule in ["none", "light", "heavy"] {
        assert!(stdout.contains(schedule), "missing {schedule}:\n{stdout}");
    }
}

#[test]
fn repro_avail_is_thread_count_invariant() {
    let (ok1, t1, _) = run(
        REPRO,
        &["avail", "--quick", "--clients", "600", "--threads", "1"],
    );
    let (ok8, t8, _) = run(
        REPRO,
        &["avail", "--quick", "--clients", "600", "--threads", "8"],
    );
    assert!(ok1 && ok8);
    assert_eq!(t1, t8, "avail tables differ between --threads 1 and 8");
}

#[test]
fn repro_serve_runs_through_a_chaos_schedule() {
    let (ok, stdout, _) = run(
        REPRO,
        &[
            "serve",
            "--quick",
            "--clients",
            "800",
            "--faults",
            "fail:3@20000,transient:7@5000..15000",
            "--replicas",
            "2",
            "--policy",
            "failover",
        ],
    );
    assert!(ok, "{stdout}");
    for name in ["DM", "FX", "ECC", "HCAM"] {
        assert!(
            stdout.contains(&format!("knee {name}")),
            "missing knee line for {name} in:\n{stdout}"
        );
    }
}

#[test]
fn repro_faults_is_thread_count_invariant() {
    let (ok1, t1, _) = run(REPRO, &["faults", "--quick", "--threads", "1"]);
    let (ok8, t8, _) = run(REPRO, &["faults", "--quick", "--threads", "8"]);
    assert!(ok1 && ok8);
    assert_eq!(t1, t8, "fault tables differ between --threads 1 and 8");
}

#[test]
fn repro_rejects_bad_shard_counts() {
    // 0 and M+1 (the default array has M = 16 disks) both fall outside
    // the accepted 1..=M range, with the same one-line phrasing the
    // other numeric flags use.
    for s in ["0", "17", "banana"] {
        let (ok, _, stderr) = run(REPRO, &["serve", "--quick", "--shards", s]);
        assert!(!ok, "shards {s:?} should be rejected");
        assert_eq!(
            stderr.lines().count(),
            1,
            "one-line error for {s:?}, got:\n{stderr}"
        );
        assert!(stderr.contains("--shards"), "{stderr}");
    }
}

#[test]
fn repro_serve_is_shard_count_invariant() {
    let args = ["serve", "--quick", "--clients", "800"];
    let (ok1, s1, _) = run(REPRO, &[&args[..], &["--shards", "1"][..]].concat());
    let (ok8, s8, _) = run(REPRO, &[&args[..], &["--shards", "8"][..]].concat());
    assert!(ok1 && ok8);
    assert_eq!(s1, s8, "serve tables differ between --shards 1 and 8");
}

#[test]
fn repro_share_is_shard_count_invariant() {
    let args = ["share", "--quick", "--clients", "500", "--rate", "60"];
    let (ok1, s1, _) = run(REPRO, &[&args[..], &["--shards", "1"][..]].concat());
    let (ok8, s8, _) = run(REPRO, &[&args[..], &["--shards", "8"][..]].concat());
    assert!(ok1 && ok8);
    assert_eq!(s1, s8, "share tables differ between --shards 1 and 8");
}

#[test]
fn repro_rejects_bad_share_fractions() {
    for f in ["-0.1", "1.5", "NaN", "banana"] {
        let (ok, _, stderr) = run(REPRO, &["serve", "--quick", "--share", f]);
        assert!(!ok, "share {f:?} should be rejected");
        assert_eq!(
            stderr.lines().count(),
            1,
            "one-line error for {f:?}, got:\n{stderr}"
        );
        assert!(stderr.contains("--share"), "{stderr}");
    }
}

#[test]
fn repro_rejects_bad_batch_windows() {
    for w in ["-1", "inf", "NaN", "banana"] {
        let (ok, _, stderr) = run(REPRO, &["serve", "--quick", "--batch-window", w]);
        assert!(!ok, "window {w:?} should be rejected");
        assert_eq!(
            stderr.lines().count(),
            1,
            "one-line error for {w:?}, got:\n{stderr}"
        );
        assert!(stderr.contains("--batch-window"), "{stderr}");
    }
}

#[test]
fn repro_rejects_sharing_combined_with_faults() {
    let (ok, _, stderr) = run(
        REPRO,
        &[
            "serve",
            "--quick",
            "--share",
            "0.5",
            "--faults",
            "fail:3@50",
        ],
    );
    assert!(!ok);
    assert_eq!(stderr.lines().count(), 1, "one-line error, got:\n{stderr}");
    assert!(stderr.contains("--faults"), "{stderr}");
}

#[test]
fn repro_serve_with_zero_share_knobs_matches_plain_serve() {
    let (ok0, shared0, _) = run(
        REPRO,
        &[
            "serve",
            "--quick",
            "--clients",
            "800",
            "--share",
            "0",
            "--batch-window",
            "0",
        ],
    );
    let (ok, plain, _) = run(REPRO, &["serve", "--quick", "--clients", "800"]);
    assert!(ok0 && ok);
    assert_eq!(
        shared0, plain,
        "--share 0 --batch-window 0 must be byte-identical to the unshared serve"
    );
}

#[test]
fn repro_serve_shared_path_reports_curves() {
    let (ok, stdout, _) = run(
        REPRO,
        &[
            "serve",
            "--quick",
            "--clients",
            "600",
            "--share",
            "0.8",
            "--batch-window",
            "50",
        ],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Shared serve sweep"), "{stdout}");
    for name in ["DM", "FX", "ECC", "HCAM"] {
        assert!(
            stdout.contains(&format!("knee {name}")),
            "missing knee line for {name} in:\n{stdout}"
        );
    }
}

#[test]
fn repro_share_reports_speedups() {
    let (ok, stdout, _) = run(
        REPRO,
        &["share", "--quick", "--clients", "500", "--rate", "60"],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Share sweep"), "{stdout}");
    assert!(stdout.contains("best speedup"), "{stdout}");
    assert!(stdout.contains("pages saved"), "{stdout}");
    // A method outside the sweep is a one-line error, not an empty table.
    let (ok, _, stderr) = run(REPRO, &["share", "--quick", "--method", "RND"]);
    assert!(!ok);
    assert!(stderr.contains("not part of the share sweep"), "{stderr}");
}

#[test]
fn repro_share_is_thread_count_invariant() {
    let args = ["share", "--quick", "--clients", "500", "--rate", "60"];
    let (ok1, t1, _) = run(REPRO, &[&args[..], &["--threads", "1"][..]].concat());
    let (ok8, t8, _) = run(REPRO, &[&args[..], &["--threads", "8"][..]].concat());
    assert!(ok1 && ok8);
    assert_eq!(t1, t8, "share tables differ between --threads 1 and 8");
}
