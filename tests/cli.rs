//! Smoke tests for the two binaries: the `declust` CLI and the `repro`
//! harness. Cargo builds the binaries for integration tests and exposes
//! their paths via `CARGO_BIN_EXE_*`.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const DECLUST: &str = env!("CARGO_BIN_EXE_declust");
const REPRO: &str = env!("CARGO_BIN_EXE_repro");

#[test]
fn declust_methods_lists_everything() {
    let (ok, stdout, _) = run(DECLUST, &["methods"]);
    assert!(ok);
    for name in ["DM", "FX", "ECC", "HCAM", "ZCAM", "GrayCAM", "RR", "RND"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn declust_evaluate_reports_metrics() {
    let (ok, stdout, _) = run(
        DECLUST,
        &[
            "evaluate",
            "--grid",
            "16x16",
            "--disks",
            "8",
            "--method",
            "hcam",
            "--shape",
            "2x2",
            "--queries",
            "50",
        ],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("mean RT"));
    assert!(stdout.contains("static load"));
}

#[test]
fn declust_advise_ranks_methods() {
    let (ok, stdout, _) = run(
        DECLUST,
        &[
            "advise",
            "--grid",
            "16x16",
            "--disks",
            "8",
            "--shape",
            "2x2",
            "--queries",
            "50",
        ],
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("->"));
    assert!(stdout.contains("DM"));
}

#[test]
fn declust_profile_is_exact() {
    let (ok, stdout, _) = run(
        DECLUST,
        &[
            "profile", "--grid", "16x16", "--disks", "16", "--method", "DM", "--shape", "4x4",
        ],
    );
    assert!(ok, "{stdout}");
    // DM on 4x4 with M=16: best = worst = 4 on every placement.
    assert!(stdout.contains("best 4  worst 4"), "{stdout}");
}

#[test]
fn declust_theorem_prints_verdicts() {
    let (ok, stdout, _) = run(DECLUST, &["theorem", "--max-m", "6"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("M =  5"));
    assert!(stdout.contains("EXISTS"));
    assert!(stdout.contains("IMPOSSIBLE"));
}

#[test]
fn declust_rejects_bad_input() {
    let (ok, _, stderr) = run(DECLUST, &["evaluate", "--grid", "banana"]);
    assert!(!ok);
    assert!(stderr.contains("usage") || stderr.contains("error"));
    let (ok, _, _) = run(DECLUST, &["no-such-command"]);
    assert!(!ok);
    let (ok, _, _) = run(DECLUST, &[]);
    assert!(!ok);
}

#[test]
fn repro_quick_t1_runs() {
    let (ok, stdout, _) = run(REPRO, &["t1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("violated"));
    // The theorems hold: zero violations for DM and FX.
    for line in stdout.lines() {
        if line.starts_with("DM") || line.starts_with("FX") {
            let fields: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(fields[3], "0", "violations in {line}");
        }
    }
}

#[test]
fn repro_rejects_unknown_experiment() {
    let (ok, _, stderr) = run(REPRO, &["e99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown"));
}

#[test]
fn repro_quick_e2_has_all_methods() {
    let (ok, stdout, _) = run(REPRO, &["e2", "--quick"]);
    assert!(ok, "{stdout}");
    for name in ["DM", "FX", "ECC", "HCAM", "OPT"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}
