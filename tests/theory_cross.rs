//! Cross-crate theory checks: the search, the verifier, the lattice
//! constructions, and the real methods all have to tell one consistent
//! story.

use decluster::prelude::*;
use decluster::theory::impossibility::{demonstrate, theorem_table};
use decluster::theory::search::{SearchOutcome, StrictSearch};
use decluster::theory::strict::{known_strict_allocation, verify_strictly_optimal};

/// The paper's theorem end to end: existence for M ∈ {1,2,3,5},
/// impossibility for M = 4 and M ∈ 6..=8.
#[test]
fn theorem_table_matches_known_theory() {
    for d in theorem_table(8, 500_000_000) {
        match d.m {
            1 | 2 | 3 | 5 => assert!(d.outcome.is_sat(), "{}", d.summary()),
            _ => assert_eq!(d.outcome, SearchOutcome::Unsatisfiable, "{}", d.summary()),
        }
    }
}

/// Any SAT witness produced by the search must pass the independent
/// exhaustive verifier.
#[test]
fn search_witnesses_verify() {
    for m in [1u32, 2, 3, 5] {
        let d = demonstrate(m, 500_000_000);
        if let SearchOutcome::Satisfiable(alloc) = d.outcome {
            assert!(
                verify_strictly_optimal(&alloc).is_ok(),
                "search witness for M={m} failed verification"
            );
        } else {
            panic!("expected SAT for M={m}");
        }
    }
}

/// The lattice constructions stay strictly optimal on grids much larger
/// than the search windows, including non-square ones.
#[test]
fn lattices_scale_beyond_search_windows() {
    for (m, dims) in [
        (2u32, (13u32, 7u32)),
        (3, (11, 9)),
        (5, (11, 13)),
        (1, (6, 6)),
    ] {
        let space = GridSpace::new_2d(dims.0, dims.1).expect("grid");
        let alloc = known_strict_allocation(&space, m).expect("lattice exists");
        assert!(
            verify_strictly_optimal(&alloc).is_ok(),
            "lattice M={m} on {dims:?}"
        );
    }
}

/// None of the practical methods is strictly optimal at M = 16 — which is
/// exactly why the paper measures average behaviour instead.
#[test]
fn no_practical_method_is_strictly_optimal_at_16_disks() {
    let space = GridSpace::new_2d(16, 16).expect("grid");
    let registry = MethodRegistry::default();
    for method in registry.with_baselines(&space, 16) {
        let alloc = AllocationMap::from_method(&space, method.as_ref()).expect("materializes");
        let ce = verify_strictly_optimal(&alloc);
        assert!(
            ce.is_err(),
            "{} unexpectedly strictly optimal (theorem says impossible)",
            method.name()
        );
    }
}

/// DM *is* strictly optimal in one dimension when d % M = 0 — the 1-D
/// degenerate case where round-robin is perfect.
#[test]
fn one_dimensional_dm_is_strictly_optimal() {
    let space = GridSpace::new(vec![24]).expect("line grid");
    let dm = DiskModulo::new(&space, 6).expect("dm builds");
    let alloc = AllocationMap::from_method(&space, &dm).expect("materializes");
    assert!(verify_strictly_optimal(&alloc).is_ok());
}

/// The search respects rectangular (non-square) windows: a strictly
/// optimal 2 x 10 window exists for M = 4 (only width-limited rectangles
/// constrain it) even though 5 x 5 is UNSAT.
#[test]
fn narrow_windows_can_be_sat_when_square_windows_are_not() {
    let narrow = StrictSearch::new(2, 10, 4).run();
    assert!(
        narrow.is_sat(),
        "2x10 M=4 should be satisfiable (got {narrow:?})"
    );
    let square = StrictSearch::new(5, 5, 4).run();
    assert_eq!(square, SearchOutcome::Unsatisfiable);
}

/// A counterexample returned by the verifier is a real violation.
#[test]
fn counterexamples_are_self_consistent() {
    let space = GridSpace::new_2d(8, 8).expect("grid");
    let dm = DiskModulo::new(&space, 16).expect("dm");
    let alloc = AllocationMap::from_method(&space, &dm).expect("materializes");
    let ce = verify_strictly_optimal(&alloc).expect_err("DM not strictly optimal");
    // Recompute independently.
    assert_eq!(alloc.response_time(&ce.region), ce.response_time);
    assert_eq!(ce.region.num_buckets().div_ceil(16), ce.optimal);
    assert!(ce.response_time > ce.optimal);
}
