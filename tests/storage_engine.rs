//! Integration tests for the storage layer: the dynamic grid file, the
//! declustered file, allocation persistence, and the multi-user
//! simulator working together.

use decluster::grid::{
    AttributeDomain, GridDirectory, GridFile, GridSchema, Record, Value, ValueRangeQuery,
};
use decluster::prelude::*;
use decluster::sim::workload::WorkloadMix;
use decluster::sim::{poisson_arrivals, DiskParams, LoopScratch, MultiUserEngine, ServeSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn int_schema(d: u32) -> GridSchema {
    GridSchema::uniform(
        vec![
            AttributeDomain::int("x", 0, 9_999),
            AttributeDomain::int("y", 0, 9_999),
        ],
        d,
    )
    .expect("schema builds")
}

/// Grid-file discovery → frozen schema → declustered file: records land
/// in the same logical cells across the hand-off.
#[test]
fn gridfile_to_declustered_file_pipeline() {
    let mut gf = GridFile::new(
        vec![
            AttributeDomain::int("x", 0, 9_999),
            AttributeDomain::int("y", 0, 9_999),
        ],
        16,
    )
    .expect("grid file builds");
    let mut rng = StdRng::seed_from_u64(8);
    let records: Vec<Record> = (0..2_000)
        .map(|_| {
            Record::new(vec![
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int(rng.gen_range(0..10_000)),
            ])
        })
        .collect();
    for r in &records {
        gf.insert(r.clone()).expect("record in domain");
    }
    gf.check_invariants().expect("grid file consistent");

    let schema = gf.to_schema().expect("schema freezes");
    let mut file =
        DeclusteredFile::create(schema, MethodKind::Hcam, 8).expect("declustered file builds");
    assert_eq!(
        file.bulk_load(records.iter().cloned()).expect("loads"),
        2_000
    );

    // Same query against both engines returns the same record multiset.
    let q = ValueRangeQuery::new(vec![
        Some((Value::Int(1_000), Value::Int(7_000))),
        Some((Value::Int(0), Value::Int(5_000))),
    ])
    .expect("query builds");
    let mut a = gf.scan(&q).expect("grid file scans").records;
    let mut b = file.scan(&q).expect("declustered file scans").records;
    let key = |r: &Record| {
        let (Value::Int(x), Value::Int(y)) = (r.value(0).clone(), r.value(1).clone()) else {
            panic!("typed")
        };
        (x, y)
    };
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a, b);
}

/// Persistence: an allocation saved and reloaded drives identical scans.
#[test]
fn persisted_allocation_reproduces_response_times() {
    let schema = int_schema(16);
    let space = schema.space().clone();
    let fx = FieldwiseXor::new(&space, 8).expect("fx builds");
    let map = AllocationMap::from_method(&space, &fx).expect("materializes");
    let restored = AllocationMap::from_bytes(&map.to_bytes()).expect("roundtrips");

    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..100 {
        let region =
            decluster::sim::workload::random_region(&mut rng, &space, &[3, 5]).expect("fits");
        assert_eq!(map.response_time(&region), restored.response_time(&region));
    }
}

/// In the latency-bound regime (one client), the closed loop ranks
/// methods like the single-query bucket metric: the best spreader has the
/// highest throughput. (Under saturation the ranking can flip — seek
/// locality starts to matter — which the multiuser example demonstrates.)
#[test]
fn closed_loop_ranking_tracks_bucket_metric() {
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 8;
    let mut rng = StdRng::seed_from_u64(23);
    let queries: Vec<BucketRegion> = (0..150)
        .map(|_| decluster::sim::workload::random_region(&mut rng, &space, &[2, 2]).expect("fits"))
        .collect();
    let params = DiskParams::default();
    let registry = MethodRegistry::default();

    let mut results: Vec<(String, f64, u64)> = Vec::new();
    for method in registry.paper_methods(&space, m) {
        let dir = GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice()));
        let run = ServeSpec::closed(1)
            .run_on(&dir, &params, &queries)
            .expect("the closed spec is valid");
        let buckets: u64 = queries.iter().map(|q| response_time(&method, q)).sum();
        results.push((method.name().to_owned(), run.report.throughput_qps, buckets));
    }
    // Latency-bound: the best bucket-metric method has the best
    // throughput, the worst the worst.
    let best_buckets = results
        .iter()
        .min_by_key(|r| r.2)
        .expect("non-empty")
        .clone();
    let worst_buckets = results
        .iter()
        .max_by_key(|r| r.2)
        .expect("non-empty")
        .clone();
    assert!(
        best_buckets.1 > worst_buckets.1,
        "bucket-best {best_buckets:?} should out-throughput bucket-worst {worst_buckets:?}: {results:?}"
    );
}

/// Open-loop: higher arrival rates raise latency, never lower it.
#[test]
fn open_loop_latency_is_monotone_in_load() {
    let space = GridSpace::new_2d(16, 16).expect("grid");
    let hcam = Hcam::new(&space, 4).expect("hcam builds");
    let dir = GridDirectory::build(space.clone(), 4, |b| hcam.disk_of(b.as_slice()));
    let params = DiskParams::default();
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<BucketRegion> = (0..200)
        .map(|_| decluster::sim::workload::random_region(&mut rng, &space, &[2, 2]).expect("fits"))
        .collect();

    let engine = MultiUserEngine::new(&dir);
    let obs = decluster::obs::Obs::disabled();
    let mut last = 0.0f64;
    for rate in [1.0, 10.0, 100.0] {
        let mut arr_rng = StdRng::seed_from_u64(99);
        let arrivals = poisson_arrivals(&mut arr_rng, queries.len(), rate);
        let report =
            engine.open_loop_obs(&params, &queries, &arrivals, &obs, &mut LoopScratch::new());
        assert!(
            report.latency.mean + 1e-9 >= last,
            "latency fell from {last} at rate {rate}"
        );
        last = report.latency.mean;
    }
}

/// The workload mix feeds the advisor end to end.
#[test]
fn advisor_handles_mixed_workloads() {
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let mut rng = StdRng::seed_from_u64(12);
    let mix = WorkloadMix::default();
    let sample = mix.generate(&mut rng, &space, 300).expect("generates");
    let advice = decluster::methods::advise(&space, 16, &sample).expect("advises");
    assert_eq!(advice.ranking.len(), 4);
    // Whatever wins must genuinely have the lowest mean.
    for (_, rt) in &advice.ranking {
        assert!(*rt >= advice.ranking[0].1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DeclusteredFile scans agree with a naive filter over the records,
    /// for arbitrary data and queries.
    #[test]
    fn declustered_file_scan_matches_naive_filter(
        points in proptest::collection::vec((0i64..10_000, 0i64..10_000), 1..120),
        (qx0, qx1, qy0, qy1) in (0i64..10_000, 0i64..10_000, 0i64..10_000, 0i64..10_000),
    ) {
        let mut file = DeclusteredFile::create(int_schema(8), MethodKind::Fx, 4)
            .expect("file builds");
        for &(x, y) in &points {
            file.insert(Record::new(vec![Value::Int(x), Value::Int(y)])).expect("in domain");
        }
        let (xl, xh) = (qx0.min(qx1), qx0.max(qx1));
        let (yl, yh) = (qy0.min(qy1), qy0.max(qy1));
        let q = ValueRangeQuery::new(vec![
            Some((Value::Int(xl), Value::Int(xh))),
            Some((Value::Int(yl), Value::Int(yh))),
        ]).expect("query builds");
        let got = file.scan(&q).expect("scans").records.len();
        let expected = points
            .iter()
            .filter(|&&(x, y)| xl <= x && x <= xh && yl <= y && y <= yh)
            .count();
        prop_assert_eq!(got, expected);
    }
}
