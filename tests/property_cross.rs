//! Cross-crate property tests: invariants that must hold for every
//! method, grid, disk count, and query simultaneously.

use decluster::prelude::*;
use proptest::prelude::*;

/// Strategy: a small 2-D grid, a legal disk count, and a random in-grid
/// query box.
fn config() -> impl Strategy<Value = (GridSpace, u32, (u32, u32, u32, u32))> {
    (2u32..24, 2u32..24, 1u32..20).prop_flat_map(|(d0, d1, m)| {
        let g = GridSpace::new_2d(d0, d1).expect("grid");
        ((0..d0), (0..d0), (0..d1), (0..d1)).prop_map(move |(r0, r1, c0, c1)| {
            (
                g.clone(),
                m,
                (r0.min(r1), r0.max(r1), c0.min(c1), c0.max(c1)),
            )
        })
    })
}

fn region_of(g: &GridSpace, q: (u32, u32, u32, u32)) -> BucketRegion {
    RangeQuery::new([q.0, q.2], [q.1, q.3])
        .expect("bounds ordered")
        .region(g)
        .expect("in grid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every method: RT within [optimal, |Q|]; disks in range; totals add up.
    #[test]
    fn response_time_is_bounded((g, m, q) in config()) {
        let region = region_of(&g, q);
        let registry = MethodRegistry::default();
        for method in registry.with_baselines(&g, m) {
            let map = AllocationMap::from_method(&g, method.as_ref()).expect("materializes");
            let rt = map.response_time(&region);
            let opt = optimal_response_time(region.num_buckets(), m);
            prop_assert!(rt >= opt, "{} RT {rt} below optimal {opt}", method.name());
            prop_assert!(rt <= region.num_buckets(), "{} RT above |Q|", method.name());
            let hist = map.access_histogram(&region);
            prop_assert_eq!(hist.iter().sum::<u64>(), region.num_buckets());
            prop_assert_eq!(hist.iter().copied().max().unwrap_or(0), rt);
        }
    }

    /// Materialized and direct evaluation agree for every method.
    #[test]
    fn materialization_is_faithful((g, m, q) in config()) {
        let region = region_of(&g, q);
        let registry = MethodRegistry::default();
        for method in registry.paper_methods(&g, m) {
            let map = AllocationMap::from_method(&g, method.as_ref()).expect("materializes");
            prop_assert_eq!(
                map.response_time(&region),
                response_time(method.as_ref(), &region),
                "{} disagrees with its materialization", method.name()
            );
        }
    }

    /// Load balance: the structured methods keep static loads within the
    /// tightest possible bound (max - min <= 1) on power-of-two square
    /// grids with M dividing the side (DM's balance precondition
    /// d_i mod M = 0; the others are balanced regardless).
    #[test]
    fn structured_methods_balance_loads(side_pow in 2u32..6, m_sub in 0u32..4) {
        let side = 1u32 << side_pow;
        let m = 1u32 << m_sub.min(side_pow);
        let g = GridSpace::new_2d(side, side).expect("grid");
        let registry = MethodRegistry::default();
        for method in registry.paper_methods(&g, m) {
            let map = AllocationMap::from_method(&g, method.as_ref()).expect("materializes");
            let stats = map.load_stats();
            prop_assert!(
                stats.max - stats.min <= 1,
                "{} load spread {}..{} on {side}x{side}, M={m}",
                method.name(), stats.min, stats.max
            );
        }
    }

    /// Translation invariance of the modulo family: shifting a query by a
    /// multiple of M along one axis leaves DM's response time unchanged.
    #[test]
    fn dm_is_translation_invariant_mod_m(
        m in 2u32..8, w in 1u32..5, h in 1u32..5, r in 0u32..4, c in 0u32..4
    ) {
        let g = GridSpace::new_2d(64, 64).expect("grid");
        let dm = DiskModulo::new(&g, m).expect("dm");
        let base = RangeQuery::new([r, c], [r + h - 1, c + w - 1])
            .expect("query").region(&g).expect("fits");
        let shifted = RangeQuery::new([r + m, c], [r + m + h - 1, c + w - 1])
            .expect("query").region(&g).expect("fits");
        prop_assert_eq!(response_time(&dm, &base), response_time(&dm, &shifted));
    }

    /// The optimal bound is monotone in query size and anti-monotone in M.
    #[test]
    fn optimal_bound_monotonicity(n in 0u64..10_000, m in 1u32..64) {
        prop_assert!(optimal_response_time(n + 1, m) >= optimal_response_time(n, m));
        prop_assert!(optimal_response_time(n, m + 1) <= optimal_response_time(n, m));
    }

    /// Chained declustering vs the `theory::bounds` failure enumeration,
    /// for every paper method and every single-disk failure on a small
    /// grid: each placement stays available with degraded RT >= healthy
    /// RT, placements the failure leaves untouched keep their healthy RT
    /// exactly, and the fraction of untouched placements agrees with
    /// [`failure_survival_fraction`]'s independent (kernel-based) count.
    #[test]
    fn chained_failures_match_the_theory_enumeration(
        rows in 3u32..9, cols in 3u32..9, m in 2u32..6, h in 1u32..4, w in 1u32..4
    ) {
        use decluster::methods::ChainedDecluster;
        use decluster::theory::bounds::failure_survival_fraction;
        let (h, w) = (h.min(rows), w.min(cols));
        let g = GridSpace::new_2d(rows, cols).expect("grid");
        for method in MethodRegistry::default().paper_methods(&g, m) {
            let map = AllocationMap::from_method(&g, method.as_ref()).expect("materializes");
            let chain = ChainedDecluster::new(map.clone()).expect("M >= 2");
            for f in 0..m {
                let mut untouched = 0u64;
                let mut placements = 0u64;
                for r in 0..=(rows - h) {
                    for c in 0..=(cols - w) {
                        let region = RangeQuery::new([r, c], [r + h - 1, c + w - 1])
                            .expect("query").region(&g).expect("fits");
                        placements += 1;
                        let healthy = map.response_time(&region);
                        let degraded = chain
                            .response_time(&region, Some(DiskId(f)))
                            .expect("chained survives any single failure");
                        prop_assert!(
                            degraded >= healthy,
                            "{}: degraded {degraded} < healthy {healthy}", method.name()
                        );
                        if map.access_histogram(&region)[f as usize] == 0 {
                            untouched += 1;
                            prop_assert_eq!(
                                degraded, healthy,
                                "{}: untouched placement changed RT", method.name()
                            );
                        }
                    }
                }
                let fraction = failure_survival_fraction(&map, &[h, w], DiskId(f))
                    .expect("shape fits, disk in range");
                prop_assert_eq!(
                    fraction,
                    untouched as f64 / placements as f64,
                    "{}: theory enumeration disagrees for failed disk {f}", method.name()
                );
            }
        }
    }

    /// The r = 1 chain against a hand-rolled one-successor reference on
    /// random grids and random failure masks: every bucket reads its
    /// primary, a failed primary falls back to `(primary + 1) mod M`, and
    /// the query is lost when that successor is down too. Both the naive
    /// masked evaluator and the kernel-accelerated one must reproduce
    /// this reference exactly — the generalization to r-way chains
    /// changed no r = 1 answer.
    #[test]
    fn r1_masked_failover_matches_the_one_successor_reference(
        (g, m, q) in config(), bits in any::<u32>()
    ) {
        use decluster::methods::ChainedDecluster;
        prop_assume!(m >= 2);
        let region = region_of(&g, q);
        let failed: Vec<bool> = (0..m).map(|d| (bits >> d) & 1 != 0).collect();
        for method in MethodRegistry::default().paper_methods(&g, m) {
            let map = AllocationMap::from_method(&g, method.as_ref()).expect("materializes");
            let kernel = map.disk_counts().expect("kernel builds");
            let chain = ChainedDecluster::with_replicas(map.clone(), 1).expect("M >= 2");
            let mut per_disk = vec![0u64; m as usize];
            let mut lost = false;
            for bucket in region.iter() {
                let p = map.disk_of(bucket.as_slice()).0;
                let serving = if !failed[p as usize] {
                    p
                } else {
                    let s = (p + 1) % m;
                    if failed[s as usize] {
                        lost = true;
                        break;
                    }
                    s
                };
                per_disk[serving as usize] += 1;
            }
            let reference = if lost {
                None
            } else {
                Some(per_disk.iter().copied().max().unwrap_or(0))
            };
            prop_assert_eq!(
                chain.response_time_masked(&region, &failed),
                reference,
                "{}: naive masked eval diverged from the reference (mask {bits:b})",
                method.name()
            );
            prop_assert_eq!(
                chain.degraded_response_time(&kernel, &region, &failed),
                reference,
                "{}: kernel eval diverged from the reference (mask {bits:b})",
                method.name()
            );
        }
    }

    /// An r-way chain survives ANY `<= r` simultaneous failures with
    /// availability 1.0: every placement of the shape stays answerable at
    /// a degraded RT no better than healthy. Cross-checked against the
    /// `theory::bounds` failure enumeration: for single failures, the
    /// fraction of placements whose RT is untouched equals
    /// [`failure_survival_fraction`] — replication lifts the *answerable*
    /// fraction to 1.0 but cannot change which placements dodge the
    /// failed disk entirely.
    #[test]
    fn r_way_chains_survive_any_r_failures(
        rows in 3u32..7, cols in 3u32..7, m in 2u32..5, r_raw in 1u32..4,
        h in 1u32..3, w in 1u32..3
    ) {
        use decluster::methods::ChainedDecluster;
        use decluster::theory::bounds::failure_survival_fraction;
        let r = r_raw.min(m - 1);
        let (h, w) = (h.min(rows), w.min(cols));
        let g = GridSpace::new_2d(rows, cols).expect("grid");
        for method in MethodRegistry::default().paper_methods(&g, m) {
            let map = AllocationMap::from_method(&g, method.as_ref()).expect("materializes");
            let kernel = map.disk_counts().expect("kernel builds");
            let chain = ChainedDecluster::with_replicas(map.clone(), r).expect("r in 1..M");
            for bits in 0u32..(1 << m) {
                if bits.count_ones() > r {
                    continue;
                }
                let failed: Vec<bool> = (0..m).map(|d| (bits >> d) & 1 != 0).collect();
                let mut untouched = 0u64;
                let mut placements = 0u64;
                for row in 0..=(rows - h) {
                    for col in 0..=(cols - w) {
                        let region = RangeQuery::new([row, col], [row + h - 1, col + w - 1])
                            .expect("query").region(&g).expect("fits");
                        placements += 1;
                        let healthy = map.response_time(&region);
                        let degraded = chain.degraded_response_time(&kernel, &region, &failed);
                        prop_assert!(
                            degraded.is_some(),
                            "{}: r = {r} lost a query under mask {bits:b}", method.name()
                        );
                        prop_assert!(
                            degraded.unwrap() >= healthy,
                            "{}: degraded below healthy under mask {bits:b}", method.name()
                        );
                        if bits.count_ones() == 1
                            && kernel.access_histogram(&region)[bits.trailing_zeros() as usize]
                                == 0
                        {
                            untouched += 1;
                            prop_assert_eq!(
                                degraded.unwrap(), healthy,
                                "{}: untouched placement changed RT", method.name()
                            );
                        }
                    }
                }
                if bits.count_ones() == 1 {
                    let f = bits.trailing_zeros();
                    let fraction = failure_survival_fraction(&map, &[h, w], DiskId(f))
                        .expect("shape fits, disk in range");
                    prop_assert_eq!(
                        fraction,
                        untouched as f64 / placements as f64,
                        "{}: theory enumeration disagrees for failed disk {f} at r = {r}",
                        method.name()
                    );
                }
            }
        }
    }
}
