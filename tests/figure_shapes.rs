//! Shape assertions for the reproduced figures: the qualitative findings
//! the paper reports must hold in our reproduction (who wins, where the
//! regimes are), independent of absolute numbers.

use decluster::prelude::*;
use decluster::sim::workload::{ShapeSweep, SizeSweep};

fn experiment() -> Experiment {
    Experiment::new(GridSpace::new_2d(64, 64).expect("grid"), 16)
        .with_queries_per_point(300)
        .with_seed(1994)
}

/// Finding (i): for large queries all methods perform almost the same and
/// are close to optimal.
#[test]
fn large_queries_converge_to_optimal() {
    let r = experiment()
        .run_size_sweep(&SizeSweep::explicit(vec![256, 512, 1024]))
        .expect("sweep runs");
    for s in &r.series {
        for (mean, opt) in s.means.iter().zip(&r.optimal) {
            let factor = mean / opt;
            assert!(
                factor < 1.15,
                "{} at large size is {factor:.3}x optimal",
                s.name
            );
        }
    }
}

/// Finding (ii): for small queries the differences are substantial — DM
/// is the weakest, the spatial methods (ECC/HCAM) the strongest.
#[test]
fn small_queries_show_substantial_differences() {
    let r = experiment()
        .run_size_sweep(&SizeSweep::explicit(vec![4, 8, 16]))
        .expect("sweep runs");
    let dm = r.series_for("DM").expect("DM present");
    let hcam = r.series_for("HCAM").expect("HCAM present");
    let ecc = r.series_for("ECC").expect("ECC present");
    for i in 0..r.xs.len() {
        assert!(
            dm.means[i] > hcam.means[i],
            "DM ({}) should lose to HCAM ({}) at area {}",
            dm.means[i],
            hcam.means[i],
            r.xs[i]
        );
        assert!(dm.means[i] > ecc.means[i], "DM should lose to ECC too");
    }
    // Substantial: at least 30% worse somewhere in the small regime.
    let worst_gap = (0..r.xs.len())
        .map(|i| dm.means[i] / hcam.means[i])
        .fold(0.0f64, f64::max);
    assert!(worst_gap > 1.3, "DM/HCAM gap only {worst_gap:.3}");
}

/// Finding (iii): performance is sensitive to query shape — DM flips from
/// worst on squares to optimal on lines, HCAM the other way around.
#[test]
fn shape_sensitivity_flips_the_ranking() {
    let r = experiment()
        .run_shape_sweep(&ShapeSweep::new(64, 6))
        .expect("sweep runs");
    let dm = r.series_for("DM").expect("DM");
    let hcam = r.series_for("HCAM").expect("HCAM");
    let square = 0; // aspect 1:1
    let line = r.xs.len() - 1; // aspect 1:64
    assert!(
        dm.means[square] > hcam.means[square],
        "on squares HCAM should beat DM"
    );
    assert!(
        dm.means[line] < hcam.means[line],
        "on lines DM should beat HCAM"
    );
    // DM on a 1x64 line with M=16 is exactly optimal.
    assert_eq!(dm.means[line], r.optimal[line]);
}

/// Finding (iv): deviation from optimality decreases with query size.
#[test]
fn deviation_shrinks_with_query_size() {
    let r = experiment()
        .run_size_sweep(&SizeSweep::explicit(vec![4, 64, 1024]))
        .expect("sweep runs");
    for s in &r.series {
        let small = s.means[0] / r.optimal[0];
        let large = s.means[2] / r.optimal[2];
        assert!(
            large < small,
            "{}: deviation factor grew from {small:.3} to {large:.3}",
            s.name
        );
    }
}

/// Fig 5(a) regime: for small queries DM is uniformly the worst of the
/// four methods across disk counts.
#[test]
fn dm_uniformly_worst_for_small_queries_across_disks() {
    let r = experiment()
        .run_disk_sweep(&[4, 8, 16, 32], 4)
        .expect("sweep runs");
    let dm = r.series_for("DM").expect("DM");
    for other in ["FX", "ECC", "HCAM"] {
        let s = r.series_for(other).expect("series");
        for i in 0..r.xs.len() {
            if s.means[i].is_finite() {
                assert!(
                    dm.means[i] >= s.means[i],
                    "DM ({}) beat {} ({}) at M={}",
                    dm.means[i],
                    other,
                    s.means[i],
                    r.xs[i]
                );
            }
        }
    }
}

/// Fig 5(b) regime: for large queries at power-of-two disk counts DM and
/// FX sit exactly on the optimum and beat HCAM (the paper's "DM/CMD and
/// FX consistently out-perform HCAM").
#[test]
fn dm_fx_beat_hcam_for_large_queries() {
    let r = experiment()
        .run_disk_sweep(&[4, 8, 16], 256)
        .expect("sweep runs");
    let hcam = r.series_for("HCAM").expect("HCAM");
    for name in ["DM", "FX"] {
        let s = r.series_for(name).expect("series");
        for i in 0..r.xs.len() {
            assert!(
                s.means[i] <= hcam.means[i],
                "{name} should beat HCAM at M={} on large queries",
                r.xs[i]
            );
            assert_eq!(s.means[i], r.optimal[i], "{name} should be optimal");
        }
    }
}

/// Point queries cost exactly one bucket retrieval under every method.
#[test]
fn point_queries_are_uniform() {
    let r = experiment().run_partial_match().expect("runs");
    assert_eq!(r.xs[0], 0.0);
    for s in &r.series {
        assert_eq!(s.means[0], 1.0, "{}", s.name);
    }
}

/// With d % M == 0, DM achieves the optimum on every partial-match query
/// (its classic optimality theorem), while HCAM does not.
#[test]
fn partial_match_favours_dm() {
    let r = experiment().run_partial_match().expect("runs");
    let dm = r.series_for("DM").expect("DM");
    let hcam = r.series_for("HCAM").expect("HCAM");
    // One unspecified attribute: 64 buckets over 16 disks, optimal 4.
    assert_eq!(dm.means[1], 4.0);
    assert!(hcam.means[1] > dm.means[1]);
}

/// Determinism: the full experiment is a pure function of the seed.
#[test]
fn experiments_are_reproducible() {
    let a = experiment()
        .run_size_sweep(&SizeSweep::explicit(vec![16, 64]))
        .expect("runs");
    let b = experiment()
        .run_size_sweep(&SizeSweep::explicit(vec![16, 64]))
        .expect("runs");
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.means, sb.means);
    }
    let c = experiment()
        .with_seed(7777)
        .run_size_sweep(&SizeSweep::explicit(vec![16, 64]))
        .expect("runs");
    let differs = a
        .series
        .iter()
        .zip(&c.series)
        .any(|(sa, sc)| sa.means != sc.means);
    assert!(differs, "different seeds should sample different queries");
}

/// Three attributes (Experiment 3): the fraction of a query on which a
/// method is suboptimal becomes small as volume grows.
#[test]
fn three_attributes_converge_too() {
    let space = GridSpace::new_cube(3, 16).expect("cube");
    let r = Experiment::new(space, 16)
        .with_queries_per_point(200)
        .with_seed(1994)
        .run_size_sweep(&SizeSweep::explicit(vec![8, 64, 512]))
        .expect("runs");
    for s in &r.series {
        let small = s.means[0] / r.optimal[0];
        let large = s.means[2] / r.optimal[2];
        assert!(large < small, "{}: {small:.3} -> {large:.3}", s.name);
        // DM's 3-D anti-diagonal keeps it at exactly 1.5x on the full
        // cube; everything else sits well below that.
        assert!(large <= 1.5, "{} far from optimal at volume 512", s.name);
    }
}
