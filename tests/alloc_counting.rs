//! Proof of the multi-user engine's allocation-free hot path: a counting
//! global allocator observes zero heap allocations across an entire
//! closed-loop, open-loop, event-driven serve, degraded, shared-scan,
//! and sharded (serve + shared) run (mid-run sampling included) once the
//! caller-owned `LoopScratch` has been warmed. Lives at the workspace root because the library crates
//! `forbid(unsafe_code)` and a `GlobalAlloc` impl is necessarily unsafe.
//!
//! The file holds exactly one test: the counter is process-wide, and a
//! concurrently running test would pollute the measurement.

use decluster::grid::{BucketCoord, BucketRegion, GridDirectory, GridSpace};
use decluster::prelude::*;
use decluster::sim::{
    DiskParams, FaultSchedule, LoopScratch, MultiUserEngine, ReplicaPolicy, RetryPolicy, ServeSpec,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A deterministic mixed-shape query stream tiled over the grid (no RNG:
/// the stream itself must not allocate inside the measured section, so
/// it is built entirely up front).
fn query_stream(space: &GridSpace, n: usize) -> Vec<BucketRegion> {
    let shapes: [[u32; 2]; 4] = [[1, 1], [2, 2], [2, 8], [4, 4]];
    (0..n)
        .map(|i| {
            let [h, w] = shapes[i % shapes.len()];
            let r = (i as u32 * 5) % (space.dim(0) - h + 1);
            let c = (i as u32 * 11) % (space.dim(1) - w + 1);
            BucketRegion::new(
                space,
                BucketCoord::from([r, c]),
                BucketCoord::from([r + h - 1, c + w - 1]),
            )
            .unwrap()
        })
        .collect()
}

#[test]
fn warmed_loops_make_zero_heap_allocations() {
    let space = GridSpace::new_2d(32, 32).unwrap();
    let m = 8;
    let hcam = Hcam::new(&space, m).unwrap();
    let dir = GridDirectory::build(space.clone(), m, |b| hcam.disk_of(b.as_slice()));
    let params = DiskParams::default();
    let engine = MultiUserEngine::new(&dir);
    assert!(engine.kernel_backed());
    let obs = decluster::obs::Obs::disabled();
    let queries = query_stream(&space, 256);
    let arrivals: Vec<f64> = (0..queries.len()).map(|i| i as f64 * 3.0).collect();

    // Degraded serve: a transient outage mid-stream (so retries, timeouts,
    // and losses all fire), a tight admission bound (so sheds fire), and a
    // burst arrival pattern that keeps the queue pressed against it. Every
    // spec is built before the measured section (a spec holding a fault
    // schedule owns a copy of its event list).
    let schedule = FaultSchedule::healthy(m)
        .transient(3, 20, 90)
        .expect("disk 3 exists on the test array");
    let burst: Vec<f64> = (0..queries.len()).map(|i| i as f64 * 0.5).collect();
    // Mid-run sampling on throughout: the loops must stay allocation-free
    // even while taking latency-tail snapshots.
    let serve_spec = ServeSpec::open(200.0).sampling(64.0);
    let degraded_spec = ServeSpec::open(200.0)
        .sampling(64.0)
        .replicas(1)
        .policy(ReplicaPolicy::PrimaryOnly)
        .retry(RetryPolicy {
            timeout_units: 2,
            max_retries: 3,
        })
        .admission(4)
        .faults(schedule)
        .seed(9);
    // Shared scans over the burst: a 24 ms batch window spans dozens of
    // arrivals, so windows flush, queries merge, and duplicate pages drop
    // while the loop runs out of the three warmed SharedScan arenas.
    let shared_spec = ServeSpec::open(200.0)
        .sampling(64.0)
        .share(24.0)
        .replicas(1)
        .policy(ReplicaPolicy::Spread);
    // Sharded serving: the same serve and shared-scan runs split over 4
    // disk shards, walked inline (spawning worker threads would itself
    // allocate), so every warmed shard's walk + merge + replay must stay
    // off the heap and repeat the serial reports bit for bit.
    let sharded_spec = ServeSpec::open(200.0).sampling(64.0).shards(4).threads(1);
    let sharded_shared_spec = ServeSpec::open(200.0)
        .sampling(64.0)
        .share(24.0)
        .replicas(1)
        .policy(ReplicaPolicy::Spread)
        .shards(4)
        .threads(1);

    // Warm-up: grows every LoopScratch buffer to the working-set size and
    // compiles the kernel's per-shape corner plans.
    let mut ls = LoopScratch::new();
    let warm_closed = engine.closed_loop_obs(&params, &queries, 8, &obs, &mut ls);
    let warm_open = engine.open_loop_obs(&params, &queries, &arrivals, &obs, &mut ls);
    let warm_serve = serve_spec
        .run_with_arrivals(&engine, &params, &queries, &arrivals, &obs, &mut ls)
        .expect("the serve spec is valid");
    let warm_degraded = degraded_spec
        .run_with_arrivals(&engine, &params, &queries, &burst, &obs, &mut ls)
        .expect("schedule matches the test array");
    let warm_shared = shared_spec
        .run_with_arrivals(&engine, &params, &queries, &burst, &obs, &mut ls)
        .expect("the shared spec is valid");
    let _ = sharded_spec
        .run_with_arrivals(&engine, &params, &queries, &arrivals, &obs, &mut ls)
        .expect("the sharded spec is valid");
    let _ = sharded_shared_spec
        .run_with_arrivals(&engine, &params, &queries, &burst, &obs, &mut ls)
        .expect("the sharded shared spec is valid");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let closed = engine.closed_loop_obs(&params, &queries, 8, &obs, &mut ls);
    let open = engine.open_loop_obs(&params, &queries, &arrivals, &obs, &mut ls);
    let serve = serve_spec
        .run_with_arrivals(&engine, &params, &queries, &arrivals, &obs, &mut ls)
        .expect("the serve spec is valid");
    let degraded = degraded_spec
        .run_with_arrivals(&engine, &params, &queries, &burst, &obs, &mut ls)
        .expect("schedule matches the test array");
    let shared = shared_spec
        .run_with_arrivals(&engine, &params, &queries, &burst, &obs, &mut ls)
        .expect("the shared spec is valid");
    let sharded = sharded_spec
        .run_with_arrivals(&engine, &params, &queries, &arrivals, &obs, &mut ls)
        .expect("the sharded spec is valid");
    let sharded_shared = sharded_shared_spec
        .run_with_arrivals(&engine, &params, &queries, &burst, &obs, &mut ls)
        .expect("the sharded shared spec is valid");
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(
        during, 0,
        "warmed closed+open+serve+degraded+shared+sharded loops must not touch the heap ({during} allocations observed)"
    );
    // The measured runs are the warm-up runs, bit for bit.
    assert_eq!(
        closed.makespan_ms.to_bits(),
        warm_closed.makespan_ms.to_bits()
    );
    assert_eq!(
        closed.latency.mean.to_bits(),
        warm_closed.latency.mean.to_bits()
    );
    assert_eq!(open.makespan_ms.to_bits(), warm_open.makespan_ms.to_bits());
    assert_eq!(
        open.latency.mean.to_bits(),
        warm_open.latency.mean.to_bits()
    );
    assert_eq!(
        serve.report.makespan_ms.to_bits(),
        warm_serve.report.makespan_ms.to_bits()
    );
    assert_eq!(serve.events, warm_serve.events);
    assert_eq!(serve.samples, warm_serve.samples);
    assert!(serve.samples > 0, "sampling was live in the measured run");
    // The degraded run exercised the availability paths while staying off
    // the heap, and repeats bit for bit.
    let avail = degraded
        .availability
        .expect("degraded runs report availability");
    let warm_avail = warm_degraded
        .availability
        .expect("degraded runs report availability");
    assert!(avail.retries > 0, "the transient outage forced retries");
    assert!(avail.shed > 0, "the admission bound forced sheds");
    assert!(avail.transitions > 0, "fault events reached the heap");
    assert_eq!(
        degraded.report.makespan_ms.to_bits(),
        warm_degraded.report.makespan_ms.to_bits()
    );
    assert_eq!(
        degraded.report.latency.mean.to_bits(),
        warm_degraded.report.latency.mean.to_bits()
    );
    assert_eq!(avail, warm_avail);
    // The shared run merged windows and dropped duplicate pages while
    // staying off the heap, and repeats bit for bit.
    let sharing = shared.sharing.expect("shared runs report sharing stats");
    let warm_sharing = warm_shared
        .sharing
        .expect("shared runs report sharing stats");
    assert!(sharing.windows > 0, "the batch window flushed");
    assert!(sharing.merged_queries > 0, "the burst merged queries");
    assert!(sharing.pages_saved > 0, "merging deduplicated pages");
    assert_eq!(
        shared.report.makespan_ms.to_bits(),
        warm_shared.report.makespan_ms.to_bits()
    );
    assert_eq!(shared.events, warm_shared.events);
    assert_eq!(shared.pages, warm_shared.pages);
    assert_eq!(sharing, warm_sharing);
    // The sharded runs are the serial runs, bit for bit.
    assert_eq!(
        sharded.report.makespan_ms.to_bits(),
        serve.report.makespan_ms.to_bits()
    );
    assert_eq!(sharded.events, serve.events);
    assert_eq!(sharded.samples, serve.samples);
    assert_eq!(sharded.peak_in_flight, serve.peak_in_flight);
    assert_eq!(
        sharded_shared.report.makespan_ms.to_bits(),
        shared.report.makespan_ms.to_bits()
    );
    assert_eq!(sharded_shared.events, shared.events);
    assert_eq!(sharded_shared.pages, shared.pages);
    assert_eq!(
        sharded_shared.sharing.expect("sharded shared run shares"),
        sharing
    );
}
