//! End-to-end integration: records → schema → buckets → declustering →
//! directory → physical I/O, crossing every crate in the workspace.

use decluster::grid::{
    AttributeDomain, GridDirectory, GridSchema, Partitioning, Record, Value, ValueRangeQuery,
};
use decluster::prelude::*;
use decluster::sim::{DiskParams, IoSimulator};

fn census_schema() -> GridSchema {
    GridSchema::uniform(
        vec![
            AttributeDomain::int("age", 0, 99),
            AttributeDomain::float("income", 0.0, 100_000.0),
        ],
        16,
    )
    .expect("schema builds")
}

#[test]
fn record_routing_agrees_with_query_mapping() {
    let schema = census_schema();
    let space = schema.space().clone();

    // A record inside the query's value box must land in the query's
    // bucket region.
    let query = ValueRangeQuery::new(vec![
        Some((Value::Int(30), Value::Int(39))),
        Some((Value::Float(50_000.0), Value::Float(59_999.0))),
    ])
    .expect("query builds");
    let region = schema.region_of(&query).expect("region maps");

    for age in [30i64, 35, 39] {
        for income in [50_000.0f64, 55_000.0, 59_999.0] {
            let record = Record::new(vec![Value::Int(age), Value::Float(income)]);
            let bucket = schema.bucket_of(&record).expect("record routes");
            assert!(
                region.contains(&bucket),
                "record ({age}, {income}) routed to {bucket} outside {region:?}"
            );
        }
    }
    // And one outside stays outside.
    let outsider = Record::new(vec![Value::Int(70), Value::Float(10_000.0)]);
    assert!(!region.contains(&schema.bucket_of(&outsider).expect("routes")));
    let _ = space;
}

#[test]
fn every_method_places_every_bucket_exactly_once() {
    let schema = census_schema();
    let space = schema.space().clone();
    let m = 8;
    let registry = MethodRegistry::default();
    for method in registry.with_baselines(&space, m) {
        let dir = GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice()));
        let load = dir.load_vector();
        assert_eq!(
            load.iter().sum::<u64>(),
            space.num_buckets(),
            "{} lost buckets",
            method.name()
        );
        // Every bucket resolvable and page ids dense per disk.
        for disk in 0..m {
            let buckets = dir.buckets_on_disk(DiskId(disk));
            for (page, &id) in buckets.iter().enumerate() {
                let bp = dir.lookup_linear(id).expect("id valid");
                assert_eq!(bp.disk, DiskId(disk));
                assert_eq!(bp.page, page as u64);
            }
        }
    }
}

#[test]
fn bucket_metric_and_ms_metric_agree_on_ordering() {
    // For a fixed query, a method with a strictly smaller bucket RT must
    // not be slower in the millisecond model by more than the seek-noise
    // margin; in particular the best-bucket method is never the worst-ms
    // method. (The ms model adds seek locality, so exact ordering can
    // differ; this pins the correlation end to end.)
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 8;
    let io = IoSimulator::new(DiskParams::default());
    let region = RangeQuery::new([5, 6], [10, 13])
        .expect("query")
        .region(&space)
        .expect("fits");
    let registry = MethodRegistry::default();
    let mut rows: Vec<(String, u64, f64)> = Vec::new();
    for method in registry.paper_methods(&space, m) {
        let rt = response_time(&method, &region);
        let dir = GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice()));
        let ms = io.query_response_ms(&dir, &region);
        rows.push((method.name().to_owned(), rt, ms));
    }
    let best_buckets = rows.iter().min_by_key(|r| r.1).expect("non-empty").clone();
    let worst_ms = rows
        .iter()
        .cloned()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("non-empty");
    assert!(
        best_buckets.0 != worst_ms.0 || rows.iter().all(|r| r.1 == best_buckets.1),
        "bucket-best {best_buckets:?} is ms-worst {worst_ms:?}"
    );
}

#[test]
fn string_attribute_schema_end_to_end() {
    let schema = GridSchema::new(
        vec![
            AttributeDomain::str("surname"),
            AttributeDomain::int("year", 1900, 1999),
        ],
        vec![
            Partitioning::from_cuts(vec![Value::from("f"), Value::from("m"), Value::from("s")])
                .expect("cuts sorted"),
            Partitioning::uniform_int(1900, 1999, 4).expect("uniform"),
        ],
    )
    .expect("schema builds");
    let space = schema.space().clone();
    assert_eq!(space.dims(), &[4, 4]);

    let m = 4;
    let dm = DiskModulo::new(&space, m).expect("dm builds");
    let record = Record::new(vec![Value::from("miller"), Value::Int(1963)]);
    let bucket = schema.bucket_of(&record).expect("routes");
    assert_eq!(bucket.as_slice(), &[2, 2]);
    assert_eq!(dm.disk_of(bucket.as_slice()).0, (2 + 2) % 4);
}

#[test]
fn advisor_winner_actually_wins_on_fresh_queries() {
    use decluster::methods::advise;
    use decluster::sim::workload::random_region;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 16;
    let mut rng = StdRng::seed_from_u64(11);
    let train: Vec<BucketRegion> = (0..100)
        .map(|_| random_region(&mut rng, &space, &[2, 2]).expect("fits"))
        .collect();
    let advice = advise(&space, m, &train).expect("non-empty");

    // Score the winner and the loser on held-out queries from the same
    // distribution; the advisor's choice must hold up.
    let mut rng = StdRng::seed_from_u64(999);
    let test: Vec<BucketRegion> = (0..200)
        .map(|_| random_region(&mut rng, &space, &[2, 2]).expect("fits"))
        .collect();
    let registry = MethodRegistry::default();
    let winner = registry
        .build_by_name(advice.winner, &space, m)
        .expect("winner builds");
    let loser_name = &advice.ranking.last().expect("ranked").0;
    let loser = registry
        .build_by_name(loser_name, &space, m)
        .expect("loser builds");
    let score = |method: &dyn DeclusteringMethod| -> u64 {
        test.iter().map(|r| response_time(method, r)).sum()
    };
    assert!(
        score(winner.as_ref()) <= score(loser.as_ref()),
        "advisor winner {} lost to {} on held-out data",
        advice.winner,
        loser_name
    );
}
