//! Proof of the warm-start contract: a process started from persisted
//! images — v2 allocation images plus one persist-v3 kernel image —
//! reaches its first scored query with **zero** kernel compilations,
//! and serves the exact same answers as a cold process, bit for bit.
//!
//! The file holds exactly one test: `kernel_build_count` is a
//! process-wide counter, and a concurrently running test that builds
//! any engine would pollute the zero-build measurement.

use decluster::grid::{BucketCoord, BucketRegion, GridDirectory, GridSpace};
use decluster::methods::{kernel_build_count, KernelCache};
use decluster::prelude::*;
use decluster::sim::{DiskParams, LoopScratch, MultiUserEngine, ServeSpec};

/// A deterministic mixed-shape query stream tiled over the grid.
fn query_stream(space: &GridSpace, n: usize) -> Vec<BucketRegion> {
    let shapes: [[u32; 2]; 4] = [[1, 1], [2, 2], [2, 8], [4, 4]];
    (0..n)
        .map(|i| {
            let [h, w] = shapes[i % shapes.len()];
            let r = (i as u32 * 5) % (space.dim(0) - h + 1);
            let c = (i as u32 * 11) % (space.dim(1) - w + 1);
            BucketRegion::new(
                space,
                BucketCoord::from([r, c]),
                BucketCoord::from([r + h - 1, c + w - 1]),
            )
            .unwrap()
        })
        .collect()
}

#[test]
fn warm_start_compiles_nothing_and_matches_cold_bit_for_bit() {
    let space = GridSpace::new_2d(32, 32).unwrap();
    let m = 8;
    let registry = MethodRegistry::with_seed(7);
    let methods = registry.paper_methods(&space, m);
    assert!(
        methods.len() >= 2,
        "need several methods to make the pin meaningful"
    );

    // Cold start: evaluate every method, compile every kernel.
    let cold: Vec<(String, GridDirectory, MultiUserEngine)> = methods
        .iter()
        .map(|meth| {
            let dir = GridDirectory::build(space.clone(), m, |b| meth.disk_of(b.as_slice()));
            let engine = MultiUserEngine::new(&dir);
            (meth.name().to_owned(), dir, engine)
        })
        .collect();
    for (name, _, engine) in &cold {
        assert!(engine.kernel_backed(), "{name} must compile a kernel cold");
    }

    // Persist the full warm-start state: allocations as v2 images, all
    // compiled kernels in one v3 image.
    let mut cache = KernelCache::new();
    let mut alloc_images: Vec<(String, Vec<u8>)> = Vec::new();
    for (name, _, engine) in &cold {
        let counts = engine.serving().counts();
        let kernel = counts.kernel().expect("cold engines are kernel-backed");
        cache.insert(name, counts.allocation(), kernel);
        alloc_images.push((name.clone(), counts.allocation().to_bytes().to_vec()));
    }
    let image = cache.to_bytes();

    // Warm start from the images alone. The pin: the global kernel-build
    // counter must not move — every kernel is adopted from the image
    // after identity revalidation, none is recompiled.
    let builds_before = kernel_build_count();
    let loaded = KernelCache::from_bytes(&image).expect("a just-written image loads");
    let warm: Vec<MultiUserEngine> = alloc_images
        .iter()
        .map(|(name, bytes)| {
            let map = AllocationMap::from_bytes(bytes).expect("a just-written image loads");
            let dir = GridDirectory::from_table(space.clone(), m, map.table())
                .expect("a persisted allocation is grid-shaped");
            let kernel = loaded
                .lookup(name, &map)
                .expect("a fresh image revalidates against its own allocation");
            MultiUserEngine::with_kernel(&dir, Some(kernel))
        })
        .collect();
    assert_eq!(
        kernel_build_count() - builds_before,
        0,
        "warm-start construction must compile zero kernels"
    );

    // A full serve run on the warm engines still compiles nothing...
    let queries = query_stream(&space, 128);
    let arrivals: Vec<f64> = (0..queries.len()).map(|i| i as f64 * 2.0).collect();
    let params = DiskParams::default();
    let obs = decluster::obs::Obs::disabled();
    let spec = ServeSpec::open(150.0).seed(42);
    let mut ls = LoopScratch::new();
    let builds_before = kernel_build_count();
    let warm_runs: Vec<_> = warm
        .iter()
        .map(|engine| {
            spec.run_with_arrivals(engine, &params, &queries, &arrivals, &obs, &mut ls)
                .expect("the warm spec is valid")
        })
        .collect();
    assert_eq!(
        kernel_build_count() - builds_before,
        0,
        "warm serving must compile zero kernels"
    );

    // ...and answers bit-for-bit what the cold engines answer.
    for ((name, _, engine), warm_run) in cold.iter().zip(&warm_runs) {
        let cold_run = spec
            .run_with_arrivals(engine, &params, &queries, &arrivals, &obs, &mut ls)
            .expect("the cold spec is valid");
        assert_eq!(
            cold_run.report.makespan_ms.to_bits(),
            warm_run.report.makespan_ms.to_bits(),
            "{name}: cold and warm makespan must agree bit for bit"
        );
        assert_eq!(
            cold_run.report.throughput_qps.to_bits(),
            warm_run.report.throughput_qps.to_bits(),
            "{name}: cold and warm throughput must agree bit for bit"
        );
        assert_eq!(
            cold_run.report.latency.mean.to_bits(),
            warm_run.report.latency.mean.to_bits(),
            "{name}: cold and warm latency must agree bit for bit"
        );
        assert_eq!(cold_run.pages, warm_run.pages, "{name}: pages diverged");
        assert_eq!(cold_run.events, warm_run.events, "{name}: events diverged");
    }

    // A stale image (different allocation) must miss, never misread:
    // lookup against a shifted allocation returns None.
    let (name, _, engine) = &cold[0];
    let counts = engine.serving().counts();
    let mut shifted = counts.allocation().table().to_vec();
    shifted[0] = (shifted[0] + 1) % m;
    let shifted_map = AllocationMap::from_table(&space, m, shifted).unwrap();
    assert!(
        loaded.lookup(name, &shifted_map).is_none(),
        "a kernel image must not revalidate against a drifted allocation"
    );
}
