//! End-to-end tests of the observability subsystem: the Report API's
//! byte-compatibility with the deprecated render functions, the
//! JSON-lines trace schema, the null recorder's invisibility, and the
//! `repro --metrics/--trace` CLI surface (including the determinism
//! contract across thread counts).

use decluster::grid::GridSpace;
use decluster::obs::{json, JsonLinesSink, MetricsRecorder, Obs, TraceEvent, TraceSink};
use decluster::sim::workload::SizeSweep;
use decluster::sim::{Experiment, FaultSchedule, Report, ReportFormat, RetryPolicy};
use std::process::Command;
use std::sync::Arc;

fn seeded_sweep() -> decluster::sim::SweepResult {
    Experiment::new(GridSpace::new_2d(16, 16).unwrap(), 8)
        .with_queries_per_point(40)
        .with_seed(7)
        .run_size_sweep(&SizeSweep::new(1, 64, 6))
        .expect("sweep runs")
}

#[test]
#[allow(deprecated)] // byte-identity pin of the deprecated wrappers
fn report_api_is_byte_identical_to_deprecated_wrappers() {
    use decluster::sim::{render_csv, render_fault_table, render_table, render_table_with_ci};
    let result = seeded_sweep();
    assert_eq!(result.render(ReportFormat::Table), render_table(&result));
    assert_eq!(
        result.render(ReportFormat::TableWithCi),
        render_table_with_ci(&result)
    );
    assert_eq!(result.render(ReportFormat::Csv), render_csv(&result));

    let schedule = FaultSchedule::healthy(8).fail_stop(2, 10).unwrap();
    let report = Experiment::new(GridSpace::new_2d(16, 16).unwrap(), 8)
        .with_queries_per_point(30)
        .with_seed(11)
        .run_fault_workload(16, &schedule, &RetryPolicy::default())
        .expect("fault workload runs");
    assert_eq!(
        report.render(ReportFormat::Table),
        render_fault_table(&report)
    );
}

#[test]
fn json_lines_trace_matches_the_golden_schema() {
    let mut sink = JsonLinesSink::new(Vec::new());
    sink.emit(
        &TraceEvent::new("ping")
            .with("n", 1u64)
            .with("ratio", 0.5f64)
            .with("who", "kernel"),
    );
    sink.emit(&TraceEvent::new("pong").with("ok", true));
    let bytes = sink.into_inner();
    let text = String::from_utf8(bytes).unwrap();
    // Golden bytes: compact JSON, `event` first, insertion order after,
    // one event per line.
    assert_eq!(
        text,
        "{\"event\":\"ping\",\"n\":1,\"ratio\":0.5,\"who\":\"kernel\"}\n\
         {\"event\":\"pong\",\"ok\":true}\n"
    );
    // Every line re-parses and carries the required `event` key.
    for line in text.lines() {
        let v = json::parse(line).expect("trace line parses as JSON");
        assert!(v.get("event").and_then(|e| e.as_str()).is_some());
    }
}

#[test]
fn null_recorder_changes_nothing() {
    let grid = GridSpace::new_2d(16, 16).unwrap();
    let plain = Experiment::new(grid.clone(), 8)
        .with_queries_per_point(40)
        .with_seed(7)
        .run_size_sweep(&SizeSweep::new(1, 64, 6))
        .expect("sweep runs");
    let observed = Experiment::new(grid, 8)
        .with_queries_per_point(40)
        .with_seed(7)
        .with_obs(Obs::disabled())
        .run_size_sweep(&SizeSweep::new(1, 64, 6))
        .expect("sweep runs");
    assert_eq!(
        plain.render(ReportFormat::Table),
        observed.render(ReportFormat::Table)
    );
    assert_eq!(
        plain.render(ReportFormat::Csv),
        observed.render(ReportFormat::Csv)
    );
}

#[test]
fn live_recorder_does_not_change_results_and_counts_queries() {
    let grid = GridSpace::new_2d(16, 16).unwrap();
    let plain = Experiment::new(grid.clone(), 8)
        .with_queries_per_point(40)
        .with_seed(7)
        .run_size_sweep(&SizeSweep::new(1, 64, 6))
        .expect("sweep runs");
    let recorder = Arc::new(MetricsRecorder::new());
    let observed = Experiment::new(grid, 8)
        .with_queries_per_point(40)
        .with_seed(7)
        .with_obs(Obs::new(recorder.clone()))
        .run_size_sweep(&SizeSweep::new(1, 64, 6))
        .expect("sweep runs");
    assert_eq!(
        plain.render(ReportFormat::Table),
        observed.render(ReportFormat::Table)
    );
    let snap = recorder.registry().snapshot();
    assert_eq!(snap.counter("sweep.points"), Some(6));
    assert_eq!(snap.counter("rt.queries"), Some(6 * 40));
    assert!(snap.histogram("rt.response_time").is_some());
}

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn repro(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(REPRO).args(args).output().expect("repro runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn repro_metrics_snapshot_is_thread_count_invariant() {
    let (ok1, out1, err1) = repro(&["e1", "--quick", "--threads", "1", "--metrics", "-"]);
    let (ok8, out8, _) = repro(&["e1", "--quick", "--threads", "8", "--metrics", "-"]);
    assert!(ok1 && ok8);
    assert_eq!(out1, out8, "metrics snapshot must not depend on --threads");
    assert!(out1.contains("metrics snapshot (logical quantities, deterministic)"));
    assert!(out1.contains("rt.queries"));
    // Wall-clock timings stay off stdout so the diff above is clean.
    assert!(err1.contains("wall-clock"));
    assert!(!out1.contains("wall-clock"));
}

#[test]
fn repro_multiuser_is_thread_count_invariant() {
    let (ok1, out1, err1) = repro(&["multiuser", "--quick", "--threads", "1", "--metrics", "-"]);
    let (ok8, out8, _) = repro(&["multiuser", "--quick", "--threads", "8", "--metrics", "-"]);
    assert!(ok1 && ok8, "{err1}");
    // Tables (closed-loop grid + load sweep) AND the metrics snapshot
    // are byte-identical across thread counts.
    assert_eq!(out1, out8, "multiuser output must not depend on --threads");
    assert!(out1.contains("Multi-user closed loop"));
    assert!(out1.contains("Open-loop load sweep"));
    assert!(out1.contains("multiuser.queries"));
    assert!(out1.contains("multiuser.latency_ms"));
}

#[test]
fn repro_trace_lines_are_json_with_required_keys() {
    let dir = std::env::temp_dir().join(format!("obs_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let (ok, _, _) = repro(&["e1", "--quick", "--trace", trace.to_str().unwrap()]);
    assert!(ok);
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        assert!(v.get("event").and_then(|e| e.as_str()).is_some(), "{line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_metrics_on_non_engine_experiments() {
    // `avail` left this list in PR 7: its serving sweep runs the engine,
    // so --metrics/--trace now apply.
    for exp in ["t1", "t3", "abl", "thm", "bench"] {
        let (ok, _, err) = repro(&[exp, "--metrics", "-"]);
        assert!(!ok, "{exp} should reject --metrics");
        assert!(err.contains("--metrics/--trace do not apply"), "{err}");
    }
}
